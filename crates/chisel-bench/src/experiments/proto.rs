//! Section 7's prototype throughput numbers: the FPGA achieved a 100 MHz
//! clock but measured ~12 Msps through the free-ware DDR controller
//! (8-cycle off-chip occupancy), with the full 100 Msps restored by a
//! pipelined controller. Reproduced with the cycle-level pipeline
//! simulator.

use chisel_sim::{configs, simulate, ArrivalPattern};
use serde_json::json;

use crate::{ExperimentResult, Scale};

/// Runs the prototype-throughput simulation.
pub fn run(_scale: Scale) -> ExperimentResult {
    let mut lines = vec!["configuration\tclock\tlatency (cyc)\tsimulated Msps".to_string()];
    let mut rows = Vec::new();
    for (name, pipeline) in [
        ("ASIC eDRAM design point", configs::asic_200msps()),
        ("FPGA prototype (8-cycle DDR)", configs::fpga_prototype()),
        (
            "FPGA prototype (fixed DDR)",
            configs::fpga_prototype_fixed_ddr(),
        ),
    ] {
        let report = simulate(&pipeline, 100_000, ArrivalPattern::Periodic { period: 1 });
        let msps = report.throughput_msps(pipeline.clock_mhz());
        lines.push(format!(
            "{name}\t{:.0} MHz\t{}\t{msps:.1}",
            pipeline.clock_mhz(),
            pipeline.latency_cycles(),
        ));
        rows.push(json!({
            "config": name,
            "clock_mhz": pipeline.clock_mhz(),
            "latency_cycles": pipeline.latency_cycles(),
            "simulated_msps": msps,
        }));
    }
    lines.push(String::new());
    lines.push(
        "paper: 100 MHz clock, measured ~12 Msps with the free-ware DDR controller; 100 Msps attainable"
            .to_string(),
    );

    ExperimentResult {
        id: "proto",
        title: "Prototype lookup throughput (Section 7)",
        data: json!({ "rows": rows }),
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_bands() {
        let r = run(Scale::quick());
        let rows = r.data["rows"].as_array().unwrap();
        let asic = rows[0]["simulated_msps"].as_f64().unwrap();
        let ddr = rows[1]["simulated_msps"].as_f64().unwrap();
        let fixed = rows[2]["simulated_msps"].as_f64().unwrap();
        assert!((199.0..201.0).contains(&asic));
        assert!((11.0..13.0).contains(&ddr), "measured-equivalent {ddr}");
        assert!((99.0..101.0).contains(&fixed));
    }
}
