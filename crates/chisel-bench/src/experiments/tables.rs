//! Section 2's hash-based LPM landscape, measured: for every hash-based
//! scheme the paper discusses, the number of per-length tables
//! *implemented*, the lookup work (buckets/probes touched), and the
//! worst-case behaviour — the two problems (many tables, collisions)
//! Chisel is built to remove.

use chisel_baselines::{BinarySearchLengths, BloomLpm, ChainedHashLpm, EbfCpeLpm};
use chisel_core::stats::LookupTrace;
use chisel_core::{ChiselConfig, ChiselLpm};
use chisel_prefix::{AddressFamily, Key};
use chisel_workloads::{synthesize, PrefixLenDistribution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::json;

use crate::{ExperimentResult, Scale};

/// Runs the hash-scheme comparison.
pub fn run(scale: Scale) -> ExperimentResult {
    let table = synthesize(scale.n(120_000), &PrefixLenDistribution::bgp_ipv4(), 0x7AB);
    let mut rng = StdRng::seed_from_u64(0x7AC);
    let keys: Vec<Key> = (0..5_000)
        .map(|_| Key::from_raw(AddressFamily::V4, rng.gen::<u32>() as u128))
        .collect();

    let chained = ChainedHashLpm::from_table(&table, 2.0, 1);
    let bloom = BloomLpm::from_table(&table, 10, 3, 1);
    let binsearch = BinarySearchLengths::from_table(&table);
    let ebf_cpe = EbfCpeLpm::build(&table, 7, 12.0, 3, 1).expect("builds");
    let chisel = ChiselLpm::build(&table, ChiselConfig::ipv4()).expect("builds");

    let avg = |f: &dyn Fn(Key) -> usize| -> (f64, usize) {
        let mut total = 0usize;
        let mut worst = 0usize;
        for &k in &keys {
            let c = f(k);
            total += c;
            worst = worst.max(c);
        }
        (total as f64 / keys.len() as f64, worst)
    };

    let (naive_avg, naive_worst) = avg(&|k| chained.lookup_counting(k).2);
    let (bloom_avg, bloom_worst) = avg(&|k| bloom.lookup_counting(k).1);
    let (bs_avg, bs_worst) = avg(&|k| binsearch.lookup_counting(k).1);
    let (ebf_avg, ebf_worst) = avg(&|k| ebf_cpe.lookup_counting(k).1);
    let (chisel_avg, chisel_worst) = avg(&|k| {
        let mut t = LookupTrace::default();
        let _ = chisel.lookup_traced(k, &mut t);
        t.result_reads.max(1) // at most one off-chip access per lookup
    });

    let hist_tables = table
        .length_histogram()
        .populated_lengths()
        .iter()
        .filter(|&&l| l > 0)
        .count();
    let mut lines = vec![
        "scheme\ttables implemented\tavg off-chip work\tworst off-chip work\tcollision-free?"
            .to_string(),
    ];
    let mut push = |name: &str, tables: usize, a: f64, w: usize, cf: &str, rows: &mut Vec<_>| {
        lines.push(format!("{name}\t{tables}\t{a:.2}\t{w}\t{cf}"));
        rows.push(json!({
            "scheme": name, "tables": tables, "avg_work": a, "worst_work": w,
        }));
    };
    let mut rows = Vec::new();
    push(
        "naive chained hash",
        hist_tables,
        naive_avg,
        naive_worst,
        "no (chains)",
        &mut rows,
    );
    push(
        "Bloom-LPM [8]",
        bloom.num_stages(),
        bloom_avg,
        bloom_worst,
        "no (chains remain)",
        &mut rows,
    );
    push(
        "binary search on lengths [25]",
        binsearch.num_levels(),
        bs_avg,
        bs_worst,
        "no (hash tables chain)",
        &mut rows,
    );
    push(
        "EBF+CPE [21]+[19]",
        ebf_cpe.levels().len(),
        ebf_avg,
        ebf_worst,
        "no (least-loaded bucket may chain)",
        &mut rows,
    );
    push(
        "Chisel",
        chisel.plan().num_cells(),
        chisel_avg,
        chisel_worst,
        "yes (Bloomier + Filter Table)",
        &mut rows,
    );
    lines.push(String::new());
    lines.push(
        "paper Section 2: [8]/[25] reduce tables *searched*, not implemented; only Chisel bounds worst-case work at 1"
            .to_string(),
    );

    ExperimentResult {
        id: "tables",
        title: "Hash-based LPM schemes: tables and lookup work",
        data: json!({ "rows": rows }),
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chisel_alone_has_worst_case_one() {
        let r = run(Scale { divisor: 64 });
        let rows = r.data["rows"].as_array().unwrap();
        let by = |name: &str| {
            rows.iter()
                .find(|row| row["scheme"].as_str().unwrap().starts_with(name))
                .unwrap()
        };
        assert_eq!(by("Chisel")["worst_work"].as_u64().unwrap(), 1);
        // The naive scheme probes many per-length tables per lookup and
        // its worst case (deepest chain walk) exceeds the average.
        let naive = by("naive");
        assert!(naive["avg_work"].as_f64().unwrap() > 5.0);
        assert!(naive["worst_work"].as_f64().unwrap() > naive["avg_work"].as_f64().unwrap() + 1.0);
        // Bloom-LPM's average off-chip work is near 1, as [8] promises.
        let bl = by("Bloom-LPM");
        assert!(bl["avg_work"].as_f64().unwrap() < 2.0);
        // Binary search probes O(log L) tables.
        let bs = by("binary search");
        let levels = bs["tables"].as_u64().unwrap() as f64;
        assert!(bs["avg_work"].as_f64().unwrap() <= levels.log2() + 2.0);
    }
}
