//! Table 2: FPGA resource utilization of the 64K-prefix prototype on a
//! Virtex-IIPro XC2VP100 (estimated; see `chisel-hw::fpga`).

use chisel_hw::fpga::{estimate, FpgaConfig};
use serde_json::json;

use crate::{ExperimentResult, Scale};

/// Runs the Table 2 estimation.
pub fn run(_scale: Scale) -> ExperimentResult {
    let report = estimate(&FpgaConfig::prototype_64k());
    let mut lines = vec!["Name\tUsed\tAvailable\tUtilization".to_string()];
    let mut rows = Vec::new();
    for row in &report.rows {
        lines.push(format!(
            "{}\t{}\t{}\t{}%",
            row.name,
            row.used,
            row.available,
            row.utilization_pct()
        ));
        rows.push(json!({
            "name": row.name, "used": row.used, "available": row.available,
            "utilization_pct": row.utilization_pct(),
        }));
    }
    lines.push(String::new());
    lines.push(
        "paper Table 2: FF 14,138 (16%) / Slices 10,680 (24%) / LUT 10,746 (12%) / IOB 734 (70%) / BRAM 292 (65%)"
            .to_string(),
    );

    ExperimentResult {
        id: "tab2",
        title: "FPGA prototype utilization (XC2VP100, 64K prefixes)",
        data: json!({ "rows": rows }),
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_resources_fit() {
        let r = run(Scale::quick());
        for row in r.data["rows"].as_array().unwrap() {
            let pct = row["utilization_pct"].as_u64().unwrap();
            assert!(pct <= 100, "{} over budget", row["name"]);
        }
    }
}
