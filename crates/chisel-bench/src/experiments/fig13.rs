//! Figure 13: worst-case power of a 200 Msps Chisel in 130nm embedded
//! DRAM, vs. routing table size.

use chisel_hw::chisel_power_watts;
use chisel_prefix::AddressFamily;
use serde_json::json;

use crate::experiments::storage_model::worst_breakdown;
use crate::{ExperimentResult, Scale};

/// Runs the Figure 13 power sweep (model-based — scale-independent).
pub fn run(_scale: Scale) -> ExperimentResult {
    let msps = 200.0;
    let sizes = [256 * 1024usize, 512 * 1024, 784 * 1024, 1024 * 1024];
    let mut lines = vec!["n\ton-chip Mb\tpower (W)".to_string()];
    let mut rows = Vec::new();
    for &n in &sizes {
        let bits = worst_breakdown(AddressFamily::V4, n, 4, true).total_bits();
        let watts = chisel_power_watts(bits, msps);
        lines.push(format!(
            "{}K\t{:.1}\t{watts:.2}",
            n / 1024,
            bits as f64 / 1e6
        ));
        rows.push(json!({ "n": n, "bits": bits, "watts": watts }));
    }
    lines.push(String::new());
    lines.push("paper anchor: ~5.5 W at 512K prefixes; growth is strongly sub-linear".to_string());

    ExperimentResult {
        id: "fig13",
        title: "Chisel worst-case power at 200 Msps (130nm eDRAM)",
        data: json!({ "msps": msps, "rows": rows }),
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_and_sublinearity() {
        let r = run(Scale::quick());
        let rows = r.data["rows"].as_array().unwrap();
        let w512 = rows[1]["watts"].as_f64().unwrap();
        assert!((4.5..6.5).contains(&w512), "512K watts {w512}");
        let w256 = rows[0]["watts"].as_f64().unwrap();
        let w1m = rows[3]["watts"].as_f64().unwrap();
        assert!(w1m > w256 && w1m < 1.6 * w256);
    }
}
