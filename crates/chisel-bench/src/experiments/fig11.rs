//! Figure 11: CPE vs. prefix-collapsing storage as the routing table
//! grows from 256K to 1M prefixes (synthetic tables scaled from the AS
//! distribution models, as in the paper).

use chisel_workloads::{synthesize, PrefixLenDistribution};
use serde_json::json;

use crate::experiments::storage_model::table_storage;
use crate::{mbits, ExperimentResult, Scale};

/// Runs the Figure 11 scaling sweep.
pub fn run(scale: Scale) -> ExperimentResult {
    let stride = 4u8;
    let sizes = [256 * 1024usize, 512 * 1024, 784 * 1024, 1024 * 1024];
    let dist = PrefixLenDistribution::bgp_ipv4();
    let mut lines = vec!["n\tCPE worst (Mb)\tCPE avg (Mb)\tPC worst (Mb)\tPC avg (Mb)".to_string()];
    let mut rows = Vec::new();
    for &n in &sizes {
        let table = synthesize(scale.n(n), &dist, 0x000F_1611 ^ n as u64);
        let s = table_storage(&table, stride);
        lines.push(format!(
            "{}K\t{}\t{}\t{}\t{}",
            n / 1024,
            mbits(s.cpe_worst),
            mbits(s.cpe_avg),
            mbits(s.pc_worst),
            mbits(s.pc_avg),
        ));
        rows.push(json!({
            "paper_n": n, "actual_n": table.len(),
            "cpe_worst_bits": s.cpe_worst, "cpe_avg_bits": s.cpe_avg,
            "pc_worst_bits": s.pc_worst, "pc_avg_bits": s.pc_avg,
        }));
    }
    lines.push(String::new());
    lines.push(
        "paper shape: all curves linear in n; CPE worst grows with a much steeper slope"
            .to_string(),
    );

    ExperimentResult {
        id: "fig11",
        title: "CPE vs PC storage scaling with table size",
        data: json!({ "stride": stride, "rows": rows }),
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_scaling_and_ordering() {
        let r = run(Scale { divisor: 64 });
        let rows = r.data["rows"].as_array().unwrap();
        let first_pc = rows[0]["pc_worst_bits"].as_u64().unwrap();
        let last_pc = rows[rows.len() - 1]["pc_worst_bits"].as_u64().unwrap();
        assert!(last_pc > 2 * first_pc, "PC worst should grow with n");
        for row in rows {
            assert!(
                row["pc_worst_bits"].as_u64().unwrap() < row["cpe_worst_bits"].as_u64().unwrap()
            );
            assert!(row["pc_avg_bits"].as_u64().unwrap() < row["cpe_avg_bits"].as_u64().unwrap());
        }
    }
}
