//! Stride sweep (Section 6.2: "We performed similar experiments using
//! different stride values and obtained similar results"): the PC-vs-CPE
//! storage comparison of Figure 9 repeated at strides 2, 4, 6 and 8 on
//! one AS table, showing the trade-off — wider strides mean fewer
//! sub-cells but exponentially wider bit-vectors.

use chisel_workloads::{as_profiles, synthesize, PrefixLenDistribution};
use serde_json::json;

use crate::experiments::storage_model::table_storage;
use crate::{mbits, ExperimentResult, Scale};

/// Runs the stride sweep.
pub fn run(scale: Scale) -> ExperimentResult {
    let profile = &as_profiles()[0];
    let table = synthesize(
        scale.n(profile.prefixes),
        &PrefixLenDistribution::bgp_ipv4(),
        profile.seed,
    );
    let mut lines = vec![
        format!("table {} ({} prefixes)", profile.name, table.len()),
        "stride\tCPE worst (Mb)\tCPE avg (Mb)\tPC worst (Mb)\tPC avg (Mb)\tPCworst/CPEavg"
            .to_string(),
    ];
    let mut rows = Vec::new();
    for stride in [2u8, 4, 6, 8] {
        let s = table_storage(&table, stride);
        let ratio = s.pc_worst as f64 / s.cpe_avg as f64;
        lines.push(format!(
            "{stride}\t{}\t{}\t{}\t{}\t{ratio:.2}",
            mbits(s.cpe_worst),
            mbits(s.cpe_avg),
            mbits(s.pc_worst),
            mbits(s.pc_avg),
        ));
        rows.push(json!({
            "stride": stride,
            "cpe_worst_bits": s.cpe_worst, "cpe_avg_bits": s.cpe_avg,
            "pc_worst_bits": s.pc_worst, "pc_avg_bits": s.pc_avg,
            "ratio": ratio,
        }));
    }
    lines.push(String::new());
    lines.push(
        "shape: PC beats CPE at every stride; very wide strides inflate PC's 2^stride bit-vectors"
            .to_string(),
    );

    ExperimentResult {
        id: "strides",
        title: "PC vs CPE storage across collapse strides",
        data: json!({ "rows": rows }),
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_wins_at_moderate_strides() {
        let r = run(Scale { divisor: 64 });
        for row in r.data["rows"].as_array().unwrap() {
            let stride = row["stride"].as_u64().unwrap();
            let ratio = row["ratio"].as_f64().unwrap();
            // At stride 2 CPE expansion is capped at 2x, so the worst-case
            // PC sizing only breaks even; from stride 4 (the paper's
            // setting) upward PC's worst case beats CPE's average.
            if (4..=6).contains(&stride) {
                assert!(ratio < 1.0, "stride {stride}: PC worst {ratio} !< CPE avg");
            } else if stride == 2 {
                assert!(ratio < 1.2, "stride 2 should be near break-even: {ratio}");
            }
        }
        // Bit-vector blowup: PC worst at stride 8 exceeds stride 4.
        let rows = r.data["rows"].as_array().unwrap();
        let pc4 = rows[1]["pc_worst_bits"].as_u64().unwrap();
        let pc8 = rows[3]["pc_worst_bits"].as_u64().unwrap();
        assert!(pc8 > pc4);
    }
}
