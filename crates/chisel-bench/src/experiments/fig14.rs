//! Figure 14: breakup of update traffic by how Chisel absorbs it, for the
//! five RIS collector traces. Unlike the storage figures this one runs
//! the *functional* engine: a Chisel instance is built and the synthetic
//! trace replayed through `announce`/`withdraw`; the engine's own
//! classification counters are reported.

use chisel_core::{ChiselConfig, ChiselLpm};
use chisel_workloads::{
    generate_trace, rrc_profiles, synthesize, PrefixLenDistribution, UpdateEvent,
};
use serde_json::json;

use crate::{ExperimentResult, Scale};

/// Paper-scale knobs for the update experiments.
const BASE_PREFIXES: usize = 120_000;
const EVENTS: usize = 400_000;

/// Replays one profile's trace and returns the engine afterwards.
pub fn replay(scale: Scale, profile_idx: usize) -> (String, ChiselLpm, usize) {
    let profile = rrc_profiles()[profile_idx];
    let table = synthesize(
        scale.n(BASE_PREFIXES),
        &PrefixLenDistribution::bgp_ipv4(),
        profile.seed ^ 0xBA5E,
    );
    let trace = generate_trace(&table, scale.n(EVENTS), &profile);
    // Provision like a deployed router: tables sized for growth headroom
    // (the paper sizes deterministically for worst-case capacity), which
    // keeps Index Table load low and singleton inserts near-certain.
    let config = ChiselConfig::ipv4().seed(profile.seed).slack(3.0);
    let mut engine = ChiselLpm::build(&table, config).expect("engine builds");
    engine.reset_update_stats();
    let events = trace.len();
    for ev in trace {
        match ev {
            UpdateEvent::Announce(p, nh) => {
                engine.announce(p, nh).expect("announce applies");
            }
            UpdateEvent::Withdraw(p) => {
                engine.withdraw(p).expect("withdraw applies");
            }
        }
    }
    (profile.name.to_string(), engine, events)
}

/// Runs the Figure 14 breakdown.
pub fn run(scale: Scale) -> ExperimentResult {
    let mut lines = vec![
        "trace\twithdraw\tflap\tnext-hop\tadd-pc\tsingleton\tresetup\tincremental".to_string(),
    ];
    let mut rows = Vec::new();
    for i in 0..rrc_profiles().len() {
        let (name, engine, _) = replay(scale, i);
        let s = engine.update_stats();
        let t = s.total().max(1) as f64;
        lines.push(format!(
            "{name}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\t{:.4}\t{:.5}\t{:.4}",
            s.withdraws as f64 / t,
            s.route_flaps as f64 / t,
            s.next_hop_changes as f64 / t,
            s.add_collapsed as f64 / t,
            s.add_singleton as f64 / t,
            s.resetups as f64 / t,
            s.incremental_fraction(),
        ));
        rows.push(json!({
            "trace": name,
            "withdraws": s.withdraws, "route_flaps": s.route_flaps,
            "next_hops": s.next_hop_changes, "add_pc": s.add_collapsed,
            "singletons": s.add_singleton, "resetups": s.resetups,
            "incremental_fraction": s.incremental_fraction(),
        }));
    }
    lines.push(String::new());
    lines.push(
        "paper shape: >=99.9% of updates incremental; singletons a sliver; resetups ~never"
            .to_string(),
    );

    ExperimentResult {
        id: "fig14",
        title: "Breakup of update traffic across RIS traces",
        data: json!({ "rows": rows }),
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn updates_are_overwhelmingly_incremental() {
        // Divisor 8: the smallest scale at which the paper's >=99.9%
        // incremental claim is stable — re-setups are rare events (tens
        // per run), so fewer events than this leaves the measured
        // fraction hostage to per-seed luck around the bound.
        let (_, engine, events) = replay(Scale { divisor: 8 }, 0);
        let s = engine.update_stats();
        assert_eq!(s.total(), events);
        assert!(
            s.incremental_fraction() >= 0.999,
            "incremental fraction {}",
            s.incremental_fraction()
        );
        assert!(s.route_flaps > 0 && s.add_collapsed > 0 && s.withdraws > 0);
    }
}
