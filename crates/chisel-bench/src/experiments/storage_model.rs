//! Shared storage-model helpers for the Figures 9–12 comparisons.

use chisel_core::stats::{chisel_actual, chisel_worst_case, StorageBreakdown};
use chisel_prefix::collapse::{collapse_stats, StridePlan};
use chisel_prefix::cpe::{expand_to_levels, worst_case_expansion};
use chisel_prefix::{AddressFamily, RoutingTable};

/// Worst-case Chisel storage with prefix collapsing for `n` prefixes.
pub fn pc_worst_bits(family: AddressFamily, n: usize, stride: u8) -> u64 {
    chisel_worst_case(family, n, 3, 3.0, stride, true).total_bits()
}

/// Average-case Chisel storage with prefix collapsing: sized by the table's
/// actual collapsed-group count under the greedy plan.
pub fn pc_actual_bits(table: &RoutingTable, stride: u8) -> (u64, usize) {
    let plan = StridePlan::greedy(&table.length_histogram(), stride);
    let stats = collapse_stats(table, &plan);
    let groups = stats.total_groups().max(1);
    let bits = chisel_actual(table.family(), groups, table.len(), 3.0, stride).total_bits();
    (bits, groups)
}

/// CPE target levels at every `stride`-th length, the apples-to-apples
/// configuration against a stride-`stride` collapse plan (both yield the
/// same number of distinct hashable lengths).
pub fn cpe_levels(table: &RoutingTable, stride: u8) -> Vec<u8> {
    let width = table.family().width();
    let hist = table.length_histogram();
    let min = hist.min_len().unwrap_or(stride).max(1);
    let max = hist.max_len().unwrap_or(width);
    let mut levels: Vec<u8> = Vec::new();
    let mut l = min.div_ceil(stride) * stride;
    while l < max {
        levels.push(l);
        l += stride;
    }
    levels.push(max.max(l.min(width)).min(width));
    levels.dedup();
    levels
}

/// Average-case CPE storage for a Chisel-style (Index + Filter) layout:
/// the tables hold the *expanded* prefix set and no Bit-vector Table.
pub fn cpe_actual_bits(table: &RoutingTable, levels: &[u8]) -> (u64, usize) {
    let expansion = expand_to_levels(table, levels).expect("levels cover max length");
    let expanded = expansion.stats.expanded.max(1);
    let bits = chisel_worst_case(table.family(), expanded, 3, 3.0, 0, false).total_bits();
    (bits, expanded)
}

/// Worst-case CPE storage: every prefix could sit at the worst gap below
/// its target level.
pub fn cpe_worst_bits(family: AddressFamily, n: usize, levels: &[u8], min_len: u8) -> u64 {
    let factor = worst_case_expansion(levels, min_len);
    let worst_n = (n as f64 * factor).ceil() as usize;
    chisel_worst_case(family, worst_n, 3, 3.0, 0, false).total_bits()
}

/// Convenience bundle for one benchmark table.
#[derive(Debug, Clone)]
pub struct TableStorage {
    /// Worst-case prefix-collapsing storage (bits).
    pub pc_worst: u64,
    /// Average-case prefix-collapsing storage (bits).
    pub pc_avg: u64,
    /// Collapsed groups behind `pc_avg`.
    pub groups: usize,
    /// Worst-case CPE storage (bits).
    pub cpe_worst: u64,
    /// Average-case CPE storage (bits).
    pub cpe_avg: u64,
    /// Expanded prefixes behind `cpe_avg`.
    pub expanded: usize,
}

/// Computes the four storage quantities of Figures 9/11 for one table.
pub fn table_storage(table: &RoutingTable, stride: u8) -> TableStorage {
    let n = table.len();
    let family = table.family();
    let levels = cpe_levels(table, stride);
    let min_len = table.length_histogram().min_len().unwrap_or(1);
    let (pc_avg, groups) = pc_actual_bits(table, stride);
    let (cpe_avg, expanded) = cpe_actual_bits(table, &levels);
    TableStorage {
        pc_worst: pc_worst_bits(family, n, stride),
        pc_avg,
        groups,
        cpe_worst: cpe_worst_bits(family, n, &levels, min_len),
        cpe_avg,
        expanded,
    }
}

/// Re-export for experiments that need the breakdown.
pub fn worst_breakdown(
    family: AddressFamily,
    n: usize,
    stride: u8,
    wildcards: bool,
) -> StorageBreakdown {
    chisel_worst_case(family, n, 3, 3.0, stride, wildcards)
}
