//! Figure 2: Bloomier setup failure probability vs. Index Table size
//! ratio `m/n`, one curve per hash-function count `k`, at n = 256K.

use chisel_bloomier::analytics::failure_vs_ratio;
use serde_json::json;

use crate::{ExperimentResult, Scale};

/// Runs the Figure 2 sweep (analytic — scale-independent).
pub fn run(_scale: Scale) -> ExperimentResult {
    let n = 256 * 1024;
    let ratios: Vec<f64> = (1..=11).map(|r| r as f64).collect();
    let ks = [2, 3, 4, 5, 6, 7];
    let series = failure_vs_ratio(n, &ratios, &ks);

    let mut lines = Vec::new();
    let header = std::iter::once("m/n".to_string())
        .chain(ks.iter().map(|k| format!("k={k}")))
        .collect::<Vec<_>>()
        .join("\t");
    lines.push(header);
    for (i, &r) in ratios.iter().enumerate() {
        let mut row = vec![format!("{r:.0}")];
        for (_, s) in &series {
            row.push(format!("{:.2e}", s[i].1));
        }
        lines.push(row.join("\t"));
    }
    lines.push(String::new());
    lines.push("shape check: P(fail) drops sharply with k, marginally with m/n".to_string());

    ExperimentResult {
        id: "fig2",
        title: "Setup failure probability vs m/n and k (n = 256K)",
        data: json!({
            "n": n,
            "series": series.iter().map(|(k, s)| json!({
                "k": k,
                "points": s.iter().map(|(r, p)| json!([r, p])).collect::<Vec<_>>(),
            })).collect::<Vec<_>>(),
        }),
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_full_grid() {
        let r = run(Scale::quick());
        assert_eq!(r.lines.len(), 1 + 11 + 2);
        assert!(r.render().contains("k=7"));
    }
}
