//! Experiment harness reproducing every table and figure of the Chisel
//! paper's evaluation (Section 6) and prototype report (Section 7).
//!
//! Each experiment lives in [`experiments`] and returns an
//! [`ExperimentResult`] — a printable table plus a JSON value for
//! machine-readable snapshots. The `repro` binary runs them:
//!
//! ```text
//! cargo run -p chisel-bench --release --bin repro -- all
//! cargo run -p chisel-bench --release --bin repro -- fig9 fig10 --divisor 8
//! ```
//!
//! `--divisor N` scales table sizes and trace lengths down by `N` for
//! quick runs; the shipped EXPERIMENTS.md uses the full paper-scale run
//! (`--divisor 1`).

#![forbid(unsafe_code)]

pub mod experiments;

use serde::{Serialize, SerializeStruct as _, Serializer};

/// Scaling knobs shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Divides every table size and trace length from the paper.
    pub divisor: usize,
}

impl Scale {
    /// Paper-scale (divisor 1).
    pub fn full() -> Self {
        Scale { divisor: 1 }
    }

    /// A quick run for CI / smoke tests.
    pub fn quick() -> Self {
        Scale { divisor: 32 }
    }

    /// Applies the divisor to a paper-scale count, keeping a sane floor.
    pub fn n(&self, paper_n: usize) -> usize {
        (paper_n / self.divisor).max(1024)
    }
}

/// One reproduced table or figure.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment id (`fig9`, `tab1`, ...).
    pub id: &'static str,
    /// Human-readable title echoing the paper artifact.
    pub title: &'static str,
    /// Pre-formatted report lines.
    pub lines: Vec<String>,
    /// Machine-readable data series.
    pub data: serde_json::Value,
}

impl Serialize for ExperimentResult {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("ExperimentResult", 4)?;
        s.serialize_field("id", &self.id)?;
        s.serialize_field("title", &self.title)?;
        s.serialize_field("lines", &self.lines)?;
        s.serialize_field("data", &self.data)?;
        s.end()
    }
}

impl ExperimentResult {
    /// Renders the result as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

/// Formats a bit count as megabits with two decimals.
pub fn mbits(bits: u64) -> String {
    format!("{:.2}", bits as f64 / 1.0e6)
}
