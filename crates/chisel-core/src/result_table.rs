//! The Result Table: an off-chip (commodity DRAM) array of next hops,
//! carved into per-group blocks by a size-class allocator.
//!
//! Each collapsed prefix's bit-vector points at one contiguous block whose
//! entries are the next hops of the group's covered leaves, compacted in
//! leaf order. Blocks are over-provisioned to the next power of two so
//! future announces usually fit without reallocation (paper Section 4.3.2:
//! "region sizes are slightly over-provisioned to accommodate future
//! adds"), mirroring what trie schemes do for variable-size trie nodes.

use chisel_prefix::NextHop;

use crate::cow::CowTable;

/// A block handle: base pointer plus size class (`2^class` entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// First Result Table address of the block.
    pub ptr: u32,
    /// The block spans `2^class` entries.
    pub class: u8,
}

impl Block {
    /// Capacity of the block in entries.
    #[inline]
    pub fn capacity(&self) -> usize {
        1usize << self.class
    }
}

/// The Result Table with its block allocator.
///
/// The backing array is a chunked copy-on-write table, so cloning an
/// engine for snapshot publication shares the next-hop storage and a
/// block write deep-copies only the touched chunk.
#[derive(Debug, Clone)]
pub struct ResultTable {
    data: CowTable<NextHop>,
    /// `free[class]` holds pointers of freed `2^class`-entry blocks.
    free: Vec<Vec<u32>>,
    /// High-water mark of entries ever carved out.
    high_water: usize,
}

const MAX_CLASS: usize = 25; // 32M-entry blocks; far beyond any stride

impl ResultTable {
    /// Creates an empty Result Table.
    pub fn new() -> Self {
        ResultTable {
            data: CowTable::from_fn(0, |_| NextHop::new(u32::MAX)),
            free: vec![Vec::new(); MAX_CLASS + 1],
            high_water: 0,
        }
    }

    /// Allocates a block with room for at least `min_entries` next hops.
    ///
    /// # Panics
    ///
    /// Panics if `min_entries` exceeds the maximum block size.
    pub fn alloc(&mut self, min_entries: usize) -> Block {
        let class = min_entries.max(1).next_power_of_two().trailing_zeros() as u8;
        assert!(
            (class as usize) <= MAX_CLASS,
            "block of {min_entries} entries too large"
        );
        if let Some(ptr) = self.free[class as usize].pop() {
            return Block { ptr, class };
        }
        let ptr = self.data.len() as u32;
        self.data
            .resize(self.data.len() + (1usize << class), NextHop::new(u32::MAX));
        self.high_water = self.high_water.max(self.data.len());
        Block { ptr, class }
    }

    /// Returns a block to the free list.
    pub fn release(&mut self, block: Block) {
        self.free[block.class as usize].push(block.ptr);
    }

    /// Writes the next hop at `block.ptr + offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset` exceeds the block capacity.
    #[inline]
    pub fn write(&mut self, block: Block, offset: usize, next_hop: NextHop) {
        assert!(offset < block.capacity(), "offset beyond block");
        *self
            .data
            .get_mut(block.ptr as usize + offset)
            .expect("block within table") = next_hop;
    }

    /// Reads the next hop at `block.ptr + offset` — the single off-chip
    /// access at the end of every lookup.
    ///
    /// # Panics
    ///
    /// Panics if `offset` exceeds the block capacity.
    #[inline]
    pub fn read(&self, block: Block, offset: usize) -> NextHop {
        // ASSERT-OK: documented `# Panics` contract; an offset past the
        // block can still land inside `data`, so without this release
        // check a malformed table would silently return a neighboring
        // block's next hop.
        assert!(offset < block.capacity(), "offset beyond block");
        self.data[block.ptr as usize + offset]
    }

    /// Total entries ever carved out (allocated footprint).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Current table depth in entries (carved blocks, live or freed).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether no block was ever carved out.
    pub fn is_empty(&self) -> bool {
        self.data.len() == 0
    }

    /// The raw next-hop words as loaded into commodity DRAM (unused slots
    /// carry `u32::MAX`).
    pub fn words(&self) -> Vec<u32> {
        self.data.iter().map(|nh| nh.id()).collect()
    }

    /// Entries currently sitting on free lists (external fragmentation).
    pub fn free_entries(&self) -> usize {
        self.free
            .iter()
            .enumerate()
            .map(|(c, list)| list.len() << c)
            .sum()
    }
}

impl Default for ResultTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_rounds_to_power_of_two() {
        let mut t = ResultTable::new();
        assert_eq!(t.alloc(1).capacity(), 1);
        assert_eq!(t.alloc(2).capacity(), 2);
        assert_eq!(t.alloc(3).capacity(), 4);
        assert_eq!(t.alloc(5).capacity(), 8);
        assert_eq!(t.alloc(16).capacity(), 16);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut t = ResultTable::new();
        let b = t.alloc(4);
        for i in 0..4 {
            t.write(b, i, NextHop::new(i as u32 + 100));
        }
        for i in 0..4 {
            assert_eq!(t.read(b, i), NextHop::new(i as u32 + 100));
        }
    }

    #[test]
    fn release_enables_reuse() {
        let mut t = ResultTable::new();
        let a = t.alloc(8);
        t.release(a);
        let b = t.alloc(8);
        assert_eq!(a.ptr, b.ptr, "freed block must be reused");
        assert_eq!(t.free_entries(), 0);
        let hw = t.high_water();
        let _c = t.alloc(8);
        assert!(t.high_water() > hw, "no free block of this class remains");
    }

    #[test]
    fn fragmentation_accounting() {
        let mut t = ResultTable::new();
        let blocks: Vec<_> = (0..4).map(|_| t.alloc(4)).collect();
        for b in &blocks {
            t.release(*b);
        }
        assert_eq!(t.free_entries(), 16);
        assert_eq!(t.high_water(), 16);
    }

    #[test]
    #[should_panic]
    fn out_of_block_write_panics() {
        let mut t = ResultTable::new();
        let b = t.alloc(2);
        t.write(b, 2, NextHop::new(0));
    }
}
