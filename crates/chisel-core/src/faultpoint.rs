//! Deterministic fault injection for the update pipeline.
//!
//! The control plane's robustness story — salted re-setup with bounded
//! retry, graceful degradation into the spillover TCAM, snapshot-atomic
//! publication — only matters on paths that are essentially unreachable
//! under a healthy Bloomier setup. This module makes those paths testable:
//! named *fault points* are compiled into the update pipeline, and a test
//! build (`RUSTFLAGS="--cfg faultpoint"`, mirroring the `loom_lite` cfg)
//! can arm a seeded `FaultPlan` that forces them to fire with a chosen
//! per-site probability.
//!
//! Design constraints, shared with the loom-lite harness:
//!
//! - **Deterministic.** Whether an occurrence of a site fires depends only
//!   on the plan seed, the site name, and how many times that site has
//!   been reached — never on wall-clock time or global RNG state. A
//!   failing seed replays exactly.
//! - **Zero cost when disabled.** Without `--cfg faultpoint`, [`fire`]
//!   is an `#[inline(always)]` constant `false` and the whole harness
//!   compiles away; production builds carry no branches beyond a
//!   trivially predictable one per site.
//! - **Serialized.** Arming returns a guard holding a global test lock so
//!   concurrent `#[test]`s cannot observe each other's plans; the guard
//!   disarms on drop even if the test panics.

/// Bloomier re-setup convergence failure: the salted retry schedule is
/// treated as exhausted without producing a usable partition encoding.
pub const SETUP_FAIL: &str = "setup-fail";

/// Spillover-TCAM overflow: the capacity check after a successful
/// partition rebuild is forced to fail, as if every retry spilled more
/// keys than the TCAM can hold.
pub const SPILL_OVERFLOW: &str = "spill-overflow";

/// Partial update application: the engine-level update aborts *after* the
/// sub-cell mutation but *before* length/statistics bookkeeping, tearing
/// a bare engine. The snapshot path must discard the torn clone.
pub const PARTIAL_UPDATE: &str = "partial-update";

/// Allocation pressure: growing a sub-cell's group arena fails before any
/// state is touched, as a failed large allocation would.
pub const ALLOC_PRESSURE: &str = "alloc-pressure";

/// Forced singleton-insert failure: an incremental Index Table insert is
/// treated as `NoSingleton`, driving the announce down the partition
/// re-setup path (paper §4.4.2) regardless of the actual encoding.
pub const NO_SINGLETON: &str = "no-singleton";

/// Torn journal append: the process "crashes" after half of a record's
/// frame reached the file, leaving a torn tail the journal scanner must
/// truncate on recovery.
pub const JOURNAL_SHORT_WRITE: &str = "journal-short-write";

/// Checkpoint durability failure: the temp-file write completes but the
/// fsync "fails" (process death before sync/rename), so the previous
/// checkpoint must remain the authoritative one.
pub const CHECKPOINT_FSYNC_FAIL: &str = "checkpoint-fsync-fail";

/// Dataplane shard panic: a worker thread panics mid-batch; supervision
/// must respawn the shard on a fresh reader and reconcile counters.
pub const SHARD_PANIC: &str = "shard-panic";

/// Returns whether the named fault point fires at this occurrence.
///
/// Always `false` unless the crate is built with `--cfg faultpoint` and a
/// `FaultPlan` is armed with a rule for `site`.
#[cfg(not(faultpoint))]
#[inline(always)]
pub fn fire(_site: &'static str) -> bool {
    false
}

#[cfg(faultpoint)]
pub use armed::{arm, fire, hits, ArmGuard, FaultPlan};

#[cfg(faultpoint)]
mod armed {
    use std::sync::{Mutex, MutexGuard, PoisonError};

    /// How one site fires.
    #[derive(Debug, Clone, Copy)]
    enum Rule {
        /// Fire with this probability at every occurrence.
        Rate(f64),
        /// Fire exactly once, at the given zero-based occurrence.
        OnceAt(u64),
    }

    /// Seeded per-site firing rules.
    #[derive(Debug, Clone)]
    pub struct FaultPlan {
        seed: u64,
        rules: Vec<(&'static str, Rule)>,
    }

    impl FaultPlan {
        /// A plan with no rules: nothing fires until [`FaultPlan::with`]
        /// adds a site.
        pub fn new(seed: u64) -> Self {
            FaultPlan {
                seed,
                rules: Vec::new(),
            }
        }

        /// Adds (or replaces) a rule: `site` fires with probability
        /// `rate` per occurrence; `rate >= 1.0` fires every time.
        pub fn with(mut self, site: &'static str, rate: f64) -> Self {
            self.rules.retain(|&(s, _)| s != site);
            self.rules.push((site, Rule::Rate(rate.clamp(0.0, 1.0))));
            self
        }

        /// Adds (or replaces) a rule: `site` fires exactly once, at its
        /// `occurrence`-th reach (zero-based). The crash-injection
        /// harness uses this to walk a kill site through every
        /// occurrence deterministically.
        pub fn once_at(mut self, site: &'static str, occurrence: u64) -> Self {
            self.rules.retain(|&(s, _)| s != site);
            self.rules.push((site, Rule::OnceAt(occurrence)));
            self
        }

        fn rule(&self, site: &str) -> Option<Rule> {
            self.rules
                .iter()
                .find(|&&(s, _)| s == site)
                .map(|&(_, r)| r)
        }
    }

    #[derive(Debug, Default)]
    struct State {
        plan: Option<FaultPlan>,
        /// Per-site occurrence counts (every time the site is reached).
        counts: Vec<(&'static str, u64)>,
        /// Per-site fire counts (occurrences where the site fired).
        hits: Vec<(&'static str, u64)>,
    }

    fn bump(table: &mut Vec<(&'static str, u64)>, site: &'static str) -> u64 {
        if let Some(entry) = table.iter_mut().find(|(s, _)| *s == site) {
            entry.1 += 1;
            entry.1 - 1
        } else {
            table.push((site, 1));
            0
        }
    }

    static ACTIVE: Mutex<State> = Mutex::new(State {
        plan: None,
        counts: Vec::new(),
        hits: Vec::new(),
    });

    /// Serializes tests that arm plans; held by [`ArmGuard`].
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn active() -> MutexGuard<'static, State> {
        // A panicking test poisons the lock; the state itself is always
        // consistent (plain counters), so recover the guard.
        ACTIVE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Disarms the plan when dropped, even on panic.
    #[must_use = "dropping the guard disarms the plan immediately"]
    pub struct ArmGuard {
        _serial: MutexGuard<'static, ()>,
    }

    impl Drop for ArmGuard {
        fn drop(&mut self) {
            let mut st = active();
            st.plan = None;
            st.counts.clear();
            st.hits.clear();
        }
    }

    /// Arms `plan` process-wide and returns a guard that disarms it on
    /// drop. Holding the guard also holds a global test lock, so two
    /// tests can never have plans armed concurrently.
    pub fn arm(plan: FaultPlan) -> ArmGuard {
        let serial = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let mut st = active();
        st.plan = Some(plan);
        st.counts.clear();
        st.hits.clear();
        drop(st);
        ArmGuard { _serial: serial }
    }

    /// How many times `site` has fired under the currently armed plan.
    pub fn hits(site: &'static str) -> u64 {
        active()
            .hits
            .iter()
            .find(|(s, _)| *s == site)
            .map(|&(_, n)| n)
            .unwrap_or(0)
    }

    /// splitmix64 finalizer: decorrelates (seed, site, occurrence).
    fn mix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    fn site_hash(site: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for &b in site.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Returns whether the named fault point fires at this occurrence.
    pub fn fire(site: &'static str) -> bool {
        let mut st = active();
        let Some(rule) = st.plan.as_ref().and_then(|p| p.rule(site)) else {
            return false;
        };
        let seed = st.plan.as_ref().map(|p| p.seed).unwrap_or(0);
        let occurrence = bump(&mut st.counts, site);
        let fired = match rule {
            Rule::Rate(rate) if rate >= 1.0 => true,
            Rule::Rate(rate) => {
                let h = mix(seed ^ site_hash(site).wrapping_add(occurrence));
                ((h >> 32) as f64) < rate * 4_294_967_296.0
            }
            Rule::OnceAt(n) => occurrence == n,
        };
        if fired {
            bump(&mut st.hits, site);
        }
        fired
    }
}

#[cfg(all(test, faultpoint))]
mod tests {
    use super::*;

    #[test]
    fn unarmed_never_fires() {
        for _ in 0..64 {
            assert!(!fire(SETUP_FAIL));
        }
    }

    #[test]
    fn rate_one_always_fires_and_counts() {
        let _guard = arm(FaultPlan::new(1).with(SETUP_FAIL, 1.0));
        for _ in 0..10 {
            assert!(fire(SETUP_FAIL));
        }
        assert!(!fire(SPILL_OVERFLOW), "sites without a rule stay dormant");
        assert_eq!(hits(SETUP_FAIL), 10);
        assert_eq!(hits(SPILL_OVERFLOW), 0);
    }

    #[test]
    fn fractional_rate_is_deterministic_per_seed() {
        let run = |seed| {
            let _guard = arm(FaultPlan::new(seed).with(PARTIAL_UPDATE, 0.5));
            (0..256).map(|_| fire(PARTIAL_UPDATE)).collect::<Vec<_>>()
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed replays identically");
        assert_ne!(a, c, "different seeds diverge");
        let fired = a.iter().filter(|&&f| f).count();
        assert!((64..192).contains(&fired), "rate 0.5 fired {fired}/256");
    }

    #[test]
    fn once_at_fires_exactly_once_at_the_named_occurrence() {
        let _guard = arm(FaultPlan::new(5).once_at(JOURNAL_SHORT_WRITE, 3));
        let fired: Vec<bool> = (0..8).map(|_| fire(JOURNAL_SHORT_WRITE)).collect();
        assert_eq!(
            fired,
            vec![false, false, false, true, false, false, false, false]
        );
        assert_eq!(hits(JOURNAL_SHORT_WRITE), 1);
    }

    #[test]
    fn guard_drop_disarms() {
        {
            let _guard = arm(FaultPlan::new(3).with(ALLOC_PRESSURE, 1.0));
            assert!(fire(ALLOC_PRESSURE));
        }
        assert!(!fire(ALLOC_PRESSURE));
    }
}
