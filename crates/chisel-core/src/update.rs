//! Update classification — the categories of Figure 14 and the counters
//! behind the paper's update-traffic breakup.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use chisel_prefix::Prefix;

/// How one update was applied — the paper's Figure 14 categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum UpdateKind {
    /// A `withdraw`: applied on the bit-vector / Result Table only (or a
    /// no-op when the prefix was absent).
    Withdraw,
    /// An `announce` restoring a recently-removed prefix — either clearing
    /// a dirty Index Table entry or re-setting a bit-vector bit.
    RouteFlap,
    /// An `announce` for a prefix already present: only the next hop
    /// changed.
    NextHopChange,
    /// An `announce` adding a prefix whose *collapsed* form already exists
    /// in the Index Table: only the Bit-vector/Result tables change.
    AddCollapsed,
    /// An `announce` adding a new collapsed key to the Index Table
    /// incrementally through a singleton location.
    AddSingleton,
    /// An `announce` that forced a (partition-bounded) Index Table
    /// re-setup.
    Resetup,
    /// An `announce` whose re-setup exhausted its retry budget; the key
    /// was parked in the spillover TCAM instead (degraded mode).
    DegradedSpill,
}

impl fmt::Display for UpdateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UpdateKind::Withdraw => "withdraw",
            UpdateKind::RouteFlap => "route-flap",
            UpdateKind::NextHopChange => "next-hop",
            UpdateKind::AddCollapsed => "add-pc",
            UpdateKind::AddSingleton => "singleton",
            UpdateKind::Resetup => "resetup",
            UpdateKind::DegradedSpill => "degraded-spill",
        };
        f.write_str(s)
    }
}

/// Tallies of applied updates by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Withdraw operations.
    pub withdraws: usize,
    /// Route-flap restores.
    pub route_flaps: usize,
    /// Next-hop-only changes.
    pub next_hop_changes: usize,
    /// Adds absorbed by prefix collapsing.
    pub add_collapsed: usize,
    /// Incremental singleton inserts.
    pub add_singleton: usize,
    /// Partition re-setups.
    pub resetups: usize,
    /// Announces degraded into the spillover TCAM after re-setup failure.
    pub degraded_spills: usize,
}

impl UpdateStats {
    /// Records one update.
    pub fn record(&mut self, kind: UpdateKind) {
        match kind {
            UpdateKind::Withdraw => self.withdraws += 1,
            UpdateKind::RouteFlap => self.route_flaps += 1,
            UpdateKind::NextHopChange => self.next_hop_changes += 1,
            UpdateKind::AddCollapsed => self.add_collapsed += 1,
            UpdateKind::AddSingleton => self.add_singleton += 1,
            UpdateKind::Resetup => self.resetups += 1,
            UpdateKind::DegradedSpill => self.degraded_spills += 1,
        }
    }

    /// Total updates recorded.
    pub fn total(&self) -> usize {
        self.withdraws
            + self.route_flaps
            + self.next_hop_changes
            + self.add_collapsed
            + self.add_singleton
            + self.resetups
            + self.degraded_spills
    }

    /// Fraction of updates applied without touching the Index Table
    /// structure (everything but singleton inserts and re-setups) — the
    /// paper's "99.9% incremental" headline number counts these plus
    /// singletons.
    pub fn incremental_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        1.0 - ((self.resetups + self.degraded_spills) as f64 / total as f64)
    }
}

/// A bounded memory of recently withdrawn prefixes, used to classify an
/// announce as a route flap (paper Section 4.4: "a large fraction of
/// updates are actually route-flaps").
#[derive(Debug, Clone)]
pub struct RecentWithdrawals {
    set: HashMap<Prefix, usize>,
    fifo: VecDeque<Prefix>,
    capacity: usize,
}

impl RecentWithdrawals {
    /// Creates a window remembering at most `capacity` withdrawals.
    pub fn new(capacity: usize) -> Self {
        RecentWithdrawals {
            set: HashMap::new(),
            fifo: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Records a withdrawal.
    pub fn record(&mut self, prefix: Prefix) {
        *self.set.entry(prefix).or_insert(0) += 1;
        self.fifo.push_back(prefix);
        while self.fifo.len() > self.capacity {
            let Some(old) = self.fifo.pop_front() else {
                break;
            };
            if let Some(c) = self.set.get_mut(&old) {
                *c -= 1;
                if *c == 0 {
                    self.set.remove(&old);
                }
            }
        }
    }

    /// Consumes a pending withdrawal of `prefix` if one is remembered,
    /// returning whether the announce is a flap.
    pub fn take(&mut self, prefix: &Prefix) -> bool {
        match self.set.get_mut(prefix) {
            Some(c) => {
                *c -= 1;
                if *c == 0 {
                    self.set.remove(prefix);
                }
                true
            }
            None => false,
        }
    }

    /// Number of remembered (not yet consumed or evicted) withdrawals.
    pub fn len(&self) -> usize {
        self.set.values().sum()
    }

    /// Whether no withdrawals are remembered.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_tally_and_fraction() {
        let mut s = UpdateStats::default();
        for _ in 0..99 {
            s.record(UpdateKind::Withdraw);
        }
        s.record(UpdateKind::Resetup);
        assert_eq!(s.total(), 100);
        assert_eq!(s.withdraws, 99);
        assert_eq!(s.resetups, 1);
        assert!((s.incremental_fraction() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_fraction_is_one() {
        assert_eq!(UpdateStats::default().incremental_fraction(), 1.0);
    }

    #[test]
    fn recent_withdrawals_flap_detection() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        let q: Prefix = "11.0.0.0/8".parse().unwrap();
        let mut r = RecentWithdrawals::new(10);
        r.record(p);
        assert!(r.take(&p));
        assert!(!r.take(&p), "flap already consumed");
        assert!(!r.take(&q));
    }

    #[test]
    fn recent_withdrawals_eviction() {
        let mut r = RecentWithdrawals::new(2);
        let a: Prefix = "1.0.0.0/8".parse().unwrap();
        let b: Prefix = "2.0.0.0/8".parse().unwrap();
        let c: Prefix = "3.0.0.0/8".parse().unwrap();
        r.record(a);
        r.record(b);
        r.record(c); // evicts a
        assert_eq!(r.len(), 2);
        assert!(!r.take(&a));
        assert!(r.take(&b));
        assert!(r.take(&c));
        assert!(r.is_empty());
    }

    #[test]
    fn duplicate_withdrawals_counted() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        let mut r = RecentWithdrawals::new(10);
        r.record(p);
        r.record(p);
        assert!(r.take(&p));
        assert!(r.take(&p));
        assert!(!r.take(&p));
    }

    #[test]
    fn kind_display() {
        assert_eq!(UpdateKind::AddCollapsed.to_string(), "add-pc");
        assert_eq!(UpdateKind::Resetup.to_string(), "resetup");
    }
}
