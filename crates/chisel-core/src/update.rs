//! Update classification — the categories of Figure 14 and the counters
//! behind the paper's update-traffic breakup.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use chisel_prefix::Prefix;

/// How one update was applied — the paper's Figure 14 categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum UpdateKind {
    /// A `withdraw`: applied on the bit-vector / Result Table only (or a
    /// no-op when the prefix was absent).
    Withdraw,
    /// An `announce` restoring a recently-removed prefix — either clearing
    /// a dirty Index Table entry or re-setting a bit-vector bit.
    RouteFlap,
    /// An `announce` for a prefix already present: only the next hop
    /// changed.
    NextHopChange,
    /// An `announce` adding a prefix whose *collapsed* form already exists
    /// in the Index Table: only the Bit-vector/Result tables change.
    AddCollapsed,
    /// An `announce` adding a new collapsed key to the Index Table
    /// incrementally through a singleton location.
    AddSingleton,
    /// An `announce` that forced a (partition-bounded) Index Table
    /// re-setup.
    Resetup,
    /// An `announce` whose re-setup exhausted its retry budget; the key
    /// was parked in the spillover TCAM instead (degraded mode).
    DegradedSpill,
}

impl fmt::Display for UpdateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UpdateKind::Withdraw => "withdraw",
            UpdateKind::RouteFlap => "route-flap",
            UpdateKind::NextHopChange => "next-hop",
            UpdateKind::AddCollapsed => "add-pc",
            UpdateKind::AddSingleton => "singleton",
            UpdateKind::Resetup => "resetup",
            UpdateKind::DegradedSpill => "degraded-spill",
        };
        f.write_str(s)
    }
}

/// Tallies of applied updates by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Withdraw operations.
    pub withdraws: usize,
    /// Route-flap restores.
    pub route_flaps: usize,
    /// Next-hop-only changes.
    pub next_hop_changes: usize,
    /// Adds absorbed by prefix collapsing.
    pub add_collapsed: usize,
    /// Incremental singleton inserts.
    pub add_singleton: usize,
    /// Partition re-setups.
    pub resetups: usize,
    /// Announces degraded into the spillover TCAM after re-setup failure.
    pub degraded_spills: usize,
}

impl UpdateStats {
    /// Records one update.
    pub fn record(&mut self, kind: UpdateKind) {
        match kind {
            UpdateKind::Withdraw => self.withdraws += 1,
            UpdateKind::RouteFlap => self.route_flaps += 1,
            UpdateKind::NextHopChange => self.next_hop_changes += 1,
            UpdateKind::AddCollapsed => self.add_collapsed += 1,
            UpdateKind::AddSingleton => self.add_singleton += 1,
            UpdateKind::Resetup => self.resetups += 1,
            UpdateKind::DegradedSpill => self.degraded_spills += 1,
        }
    }

    /// Total updates recorded.
    pub fn total(&self) -> usize {
        self.withdraws
            + self.route_flaps
            + self.next_hop_changes
            + self.add_collapsed
            + self.add_singleton
            + self.resetups
            + self.degraded_spills
    }

    /// Fraction of updates applied without touching the Index Table
    /// structure (everything but singleton inserts and re-setups) — the
    /// paper's "99.9% incremental" headline number counts these plus
    /// singletons.
    pub fn incremental_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        1.0 - ((self.resetups + self.degraded_spills) as f64 / total as f64)
    }
}

/// Cumulative counters of the batched update path (see
/// [`crate::ChiselLpm::apply_batch`]): how many windows were published,
/// how much work per-prefix coalescing and rebuild-unit sharing avoided.
/// The batch-window companion of [`UpdateStats`] — updates applied through
/// the one-at-a-time path never touch these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Update windows applied (each published as one snapshot generation).
    pub batches_published: u64,
    /// Raw events ingested across all windows.
    pub events_ingested: u64,
    /// Raw events absorbed by per-prefix coalescing — they never touched
    /// a table (announce/withdraw/announce collapses to one change,
    /// next-hop churn collapses to the last write).
    pub events_coalesced: u64,
    /// Raw events rejected inside a window (invalid, or rolled back when
    /// a failed re-setup found no spillover-TCAM room).
    pub events_rejected: u64,
    /// Inline partition re-setups avoided: deferred inserts that shared a
    /// rebuild unit with another insert of the same window, or were swept
    /// up by a capacity-doubling full cell rebuild.
    pub resetups_saved: u64,
    /// Partition-rebuild units executed by batch windows (units of one
    /// window build concurrently).
    pub parallel_resetups: u64,
}

impl BatchStats {
    /// Folds another tally into this one.
    pub fn merge(&mut self, other: &BatchStats) {
        self.batches_published += other.batches_published;
        self.events_ingested += other.events_ingested;
        self.events_coalesced += other.events_coalesced;
        self.events_rejected += other.events_rejected;
        self.resetups_saved += other.resetups_saved;
        self.parallel_resetups += other.parallel_resetups;
    }
}

/// A bounded memory of recently withdrawn prefixes, used to classify an
/// announce as a route flap (paper Section 4.4: "a large fraction of
/// updates are actually route-flaps").
#[derive(Debug, Clone)]
pub struct RecentWithdrawals {
    set: HashMap<Prefix, usize>,
    fifo: VecDeque<Prefix>,
    capacity: usize,
}

impl RecentWithdrawals {
    /// Creates a window remembering at most `capacity` withdrawals.
    pub fn new(capacity: usize) -> Self {
        RecentWithdrawals {
            set: HashMap::new(),
            fifo: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Records a withdrawal.
    pub fn record(&mut self, prefix: Prefix) {
        *self.set.entry(prefix).or_insert(0) += 1;
        self.fifo.push_back(prefix);
        while self.fifo.len() > self.capacity {
            let Some(old) = self.fifo.pop_front() else {
                break;
            };
            if let Some(c) = self.set.get_mut(&old) {
                *c -= 1;
                if *c == 0 {
                    self.set.remove(&old);
                }
            }
        }
    }

    /// Consumes a pending withdrawal of `prefix` if one is remembered,
    /// returning whether the announce is a flap.
    pub fn take(&mut self, prefix: &Prefix) -> bool {
        match self.set.get_mut(prefix) {
            Some(c) => {
                *c -= 1;
                if *c == 0 {
                    self.set.remove(prefix);
                }
                true
            }
            None => false,
        }
    }

    /// Number of remembered (not yet consumed or evicted) withdrawals.
    pub fn len(&self) -> usize {
        self.set.values().sum()
    }

    /// Whether no withdrawals are remembered.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_tally_and_fraction() {
        let mut s = UpdateStats::default();
        for _ in 0..99 {
            s.record(UpdateKind::Withdraw);
        }
        s.record(UpdateKind::Resetup);
        assert_eq!(s.total(), 100);
        assert_eq!(s.withdraws, 99);
        assert_eq!(s.resetups, 1);
        assert!((s.incremental_fraction() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_fraction_is_one() {
        assert_eq!(UpdateStats::default().incremental_fraction(), 1.0);
    }

    #[test]
    fn recent_withdrawals_flap_detection() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        let q: Prefix = "11.0.0.0/8".parse().unwrap();
        let mut r = RecentWithdrawals::new(10);
        r.record(p);
        assert!(r.take(&p));
        assert!(!r.take(&p), "flap already consumed");
        assert!(!r.take(&q));
    }

    #[test]
    fn recent_withdrawals_eviction() {
        let mut r = RecentWithdrawals::new(2);
        let a: Prefix = "1.0.0.0/8".parse().unwrap();
        let b: Prefix = "2.0.0.0/8".parse().unwrap();
        let c: Prefix = "3.0.0.0/8".parse().unwrap();
        r.record(a);
        r.record(b);
        r.record(c); // evicts a
        assert_eq!(r.len(), 2);
        assert!(!r.take(&a));
        assert!(r.take(&b));
        assert!(r.take(&c));
        assert!(r.is_empty());
    }

    #[test]
    fn duplicate_withdrawals_counted() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        let mut r = RecentWithdrawals::new(10);
        r.record(p);
        r.record(p);
        assert!(r.take(&p));
        assert!(r.take(&p));
        assert!(!r.take(&p));
    }

    #[test]
    fn batch_stats_merge() {
        let mut a = BatchStats {
            batches_published: 1,
            events_ingested: 64,
            events_coalesced: 10,
            events_rejected: 1,
            resetups_saved: 2,
            parallel_resetups: 3,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.batches_published, 2);
        assert_eq!(a.events_ingested, 128);
        assert_eq!(a.events_coalesced, 20);
        assert_eq!(a.events_rejected, 2);
        assert_eq!(a.resetups_saved, 4);
        assert_eq!(a.parallel_resetups, 6);
    }

    #[test]
    fn kind_display() {
        assert_eq!(UpdateKind::AddCollapsed.to_string(), "add-pc");
        assert_eq!(UpdateKind::Resetup.to_string(), "resetup");
    }
}
