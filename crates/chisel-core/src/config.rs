use chisel_prefix::collapse::StridePlan;
use chisel_prefix::AddressFamily;

/// Configuration for a [`crate::ChiselLpm`] engine.
///
/// The defaults are the paper's chosen design point: `k = 3` hash
/// functions, an Index Table of `m = 3n` locations (Section 4.1), a
/// collapse stride of 4 (the stride used throughout the evaluation), and
/// 16 logical Index Table partitions for bounded re-setups.
///
/// ```
/// use chisel_core::ChiselConfig;
///
/// let config = ChiselConfig::ipv4().stride(6).partitions(8).seed(7);
/// assert_eq!(config.stride, 6);
/// ```
#[derive(Debug, Clone)]
pub struct ChiselConfig {
    /// Address family the engine serves.
    pub family: AddressFamily,
    /// Number of hash functions per Bloomier filter (paper: 3).
    pub k: usize,
    /// Index Table locations per key (paper: 3.0).
    pub m_per_key: f64,
    /// Maximum collapse stride — bits collapsed per sub-cell (paper: 4).
    pub stride: u8,
    /// Logical Index Table partitions per sub-cell (Section 4.4.2).
    pub partitions: usize,
    /// Master seed for all hash functions.
    pub seed: u64,
    /// Headroom multiplier when sizing sub-cells from the actual group
    /// count (room for future announces before a grow-resetup).
    pub slack: f64,
    /// Spillover TCAM capacity per sub-cell (paper: 16-32 entries).
    pub spill_capacity: usize,
    /// Explicit stride plan; `None` derives a greedy plan from the build
    /// table (Section 4.3.3) with gaps filled so every length is covered.
    pub plan: Option<StridePlan>,
    /// Bound on the recently-withdrawn set used to classify route flaps.
    pub flap_window: usize,
    /// Whether withdrawn collapsed keys are retained dirty in the Index
    /// Table for cheap route-flap restoration (Section 4.4.1). Disabling
    /// this is the ablation: flaps then cost a fresh key insert.
    pub flap_absorption: bool,
    /// Worker threads for the full-build pipeline (`0` = the machine's
    /// available parallelism). The built engine is byte-identical for
    /// every value — threads only change wall-clock time.
    pub build_threads: usize,
    /// Salted setup attempts per partition re-setup before the update
    /// degrades into the spillover TCAM (exponential seed-schedule
    /// backoff; the paper's Section 4.1 failure-probability analysis makes
    /// a handful of retries sufficient).
    pub resetup_retries: u32,
    /// Whether Index Tables use the cache-line-blocked layout: each key's
    /// `k` probes are confined to one 64-byte block, so a cold Index read
    /// costs one cache line instead of `k`. Answer-equivalent to the flat
    /// layout (differentially tested); disabling it is the ablation for
    /// the access-budget experiments.
    pub blocked_index: bool,
}

impl ChiselConfig {
    /// The paper's IPv4 design point.
    pub fn ipv4() -> Self {
        ChiselConfig {
            family: AddressFamily::V4,
            k: 3,
            m_per_key: 3.0,
            stride: 4,
            partitions: 16,
            seed: 0x00C4_15E1,
            slack: 1.5,
            spill_capacity: 32,
            plan: None,
            flap_window: 1 << 16,
            flap_absorption: true,
            build_threads: 0,
            resetup_retries: 4,
            blocked_index: true,
        }
    }

    /// The paper's IPv6 configuration: identical geometry, wider keys.
    pub fn ipv6() -> Self {
        ChiselConfig {
            family: AddressFamily::V6,
            ..Self::ipv4()
        }
    }

    /// Sets the number of hash functions.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn k(mut self, k: usize) -> Self {
        assert!(k > 0);
        self.k = k;
        self
    }

    /// Sets the Index Table size ratio `m/n`.
    ///
    /// # Panics
    ///
    /// Panics unless `m_per_key >= 1.0`.
    pub fn m_per_key(mut self, m_per_key: f64) -> Self {
        assert!(m_per_key >= 1.0);
        self.m_per_key = m_per_key;
        self
    }

    /// Sets the maximum collapse stride.
    pub fn stride(mut self, stride: u8) -> Self {
        self.stride = stride;
        self
    }

    /// Sets the number of logical partitions.
    ///
    /// # Panics
    ///
    /// Panics if `partitions == 0`.
    pub fn partitions(mut self, partitions: usize) -> Self {
        assert!(partitions > 0);
        self.partitions = partitions;
        self
    }

    /// Sets the hash seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the sub-cell sizing headroom.
    ///
    /// # Panics
    ///
    /// Panics unless `slack >= 1.0`.
    pub fn slack(mut self, slack: f64) -> Self {
        assert!(slack >= 1.0);
        self.slack = slack;
        self
    }

    /// Sets the per-sub-cell spillover TCAM capacity.
    pub fn spill_capacity(mut self, spill_capacity: usize) -> Self {
        self.spill_capacity = spill_capacity;
        self
    }

    /// Supplies an explicit stride plan instead of the derived greedy one.
    pub fn plan(mut self, plan: StridePlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Enables or disables dirty-bit route-flap absorption (the ablation
    /// knob; on by default).
    pub fn flap_absorption(mut self, on: bool) -> Self {
        self.flap_absorption = on;
        self
    }

    /// Sets the build-pipeline worker count (`0` = available parallelism).
    pub fn build_threads(mut self, build_threads: usize) -> Self {
        self.build_threads = build_threads;
        self
    }

    /// Selects between the cache-line-blocked Index Table layout (the
    /// default) and the flat layout (the access-budget ablation).
    pub fn blocked_index(mut self, on: bool) -> Self {
        self.blocked_index = on;
        self
    }

    /// Sets the re-setup retry budget (salted setup attempts per
    /// partition rebuild before degrading into the spillover TCAM).
    ///
    /// # Panics
    ///
    /// Panics if `resetup_retries == 0`.
    pub fn resetup_retries(mut self, resetup_retries: u32) -> Self {
        assert!(resetup_retries > 0);
        self.resetup_retries = resetup_retries;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_point_defaults() {
        let c = ChiselConfig::ipv4();
        assert_eq!(c.k, 3);
        assert_eq!(c.m_per_key, 3.0);
        assert_eq!(c.stride, 4);
        assert_eq!(c.family, AddressFamily::V4);
        let c6 = ChiselConfig::ipv6();
        assert_eq!(c6.family, AddressFamily::V6);
        assert_eq!(c6.k, 3);
    }

    #[test]
    fn builder_chains() {
        let c = ChiselConfig::ipv4()
            .k(4)
            .m_per_key(4.0)
            .stride(6)
            .partitions(8)
            .seed(1)
            .slack(2.0)
            .spill_capacity(64);
        assert_eq!(c.k, 4);
        assert_eq!(c.m_per_key, 4.0);
        assert_eq!(c.stride, 6);
        assert_eq!(c.partitions, 8);
        assert_eq!(c.seed, 1);
        assert_eq!(c.slack, 2.0);
        assert_eq!(c.spill_capacity, 64);
    }

    #[test]
    #[should_panic]
    fn zero_k_rejected() {
        ChiselConfig::ipv4().k(0);
    }

    #[test]
    #[should_panic]
    fn sub_unit_ratio_rejected() {
        ChiselConfig::ipv4().m_per_key(0.5);
    }
}
