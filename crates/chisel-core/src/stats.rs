//! Storage accounting and lookup tracing.
//!
//! Reproduces the storage models behind Figures 8–12 and 15 and the
//! "4 sequential memory accesses" latency claim of Section 6.7.1. As in
//! the paper (Section 5), Result Table / next-hop storage is excluded from
//! every storage figure: all compared schemes keep next hops off-chip in
//! commodity memory.

use chisel_prefix::bits::addr_bits;
use chisel_prefix::AddressFamily;

/// Memory accesses performed by one lookup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LookupTrace {
    /// Index Table reads (the `k` segments are read in parallel — one
    /// access per probed sub-cell).
    pub index_reads: usize,
    /// Filter Table reads.
    pub filter_reads: usize,
    /// Bit-vector Table reads (in parallel with the filter check).
    pub bitvec_reads: usize,
    /// Result Table (off-chip) reads.
    pub result_reads: usize,
    /// Spillover TCAM hits.
    pub spill_hits: usize,
    /// Flow-cache hits: the whole data path was skipped and the next hop
    /// served from one exact-match cache read.
    pub cache_hits: usize,
    /// Flow-cache misses: the lookup went through the full data path and
    /// its result was installed in the cache.
    pub cache_misses: usize,
    /// Spillover TCAM hits on *degraded* keys — keys parked in the TCAM
    /// because a partition re-setup exhausted its retry budget
    /// (Section 4.4.2 failure path). A subset of `spill_hits`.
    pub degraded_hits: usize,
    /// Modeled 64-byte cache lines a cold pass over the data path touches:
    /// one per Index Table probe group (1 line blocked, `k` lines flat),
    /// one each for the Filter and Bit-vector rows, one per Result Table
    /// read. Flow-cache hits and spillover-TCAM index hits add nothing —
    /// this is the software analogue of the DESIGN.md §11 access budget.
    pub cache_lines_touched: u64,
}

impl LookupTrace {
    /// Sequential memory-access depth of the Chisel pipeline for one
    /// sub-cell: Index Table, then Filter ∥ Bit-vector, then the off-chip
    /// Result Table read — with the hash stage this is the paper's 4
    /// sequential accesses, independent of key width (all sub-cells are
    /// searched in parallel in hardware).
    pub const SEQUENTIAL_DEPTH: usize = 4;

    /// Total reads across all tables.
    pub fn total_reads(&self) -> usize {
        self.index_reads + self.filter_reads + self.bitvec_reads + self.result_reads
    }

    /// Accumulates `other` into `self` (used to fold per-shard traces
    /// into a dataplane-wide total).
    pub fn merge(&mut self, other: &LookupTrace) {
        self.index_reads += other.index_reads;
        self.filter_reads += other.filter_reads;
        self.bitvec_reads += other.bitvec_reads;
        self.result_reads += other.result_reads;
        self.spill_hits += other.spill_hits;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.degraded_hits += other.degraded_hits;
        self.cache_lines_touched += other.cache_lines_touched;
    }
}

/// Counters for the re-setup recovery policy (Section 4.4.2 failure
/// handling): salted retries, degradation into the spillover TCAM, and
/// rollbacks of updates that could not complete.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Salted Bloomier setup attempts consumed by partition re-setups
    /// (1 per first try + 1 per retry).
    pub resetup_attempts: u64,
    /// Setup attempts beyond the first of each re-setup (the retry tail
    /// of the exponential seed schedule).
    pub resetup_retries: u64,
    /// Re-setups whose whole retry budget failed to produce an encoding
    /// that fits the spillover TCAM.
    pub resetup_failures: u64,
    /// Keys parked in the spillover TCAM after a failed re-setup
    /// (degraded mode entries).
    pub degraded_parks: u64,
    /// Parked keys later re-encoded by a successful re-setup, re-absorbed
    /// by an arena regrow, or withdrawn.
    pub degraded_reclaims: u64,
    /// Announces fully rolled back because recovery was impossible (the
    /// TCAM had no room to park the key).
    pub rollbacks: u64,
}

impl RecoveryStats {
    /// Accumulates `other` into `self` (used to merge per-cell counters
    /// into engine-wide totals).
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.resetup_attempts += other.resetup_attempts;
        self.resetup_retries += other.resetup_retries;
        self.resetup_failures += other.resetup_failures;
        self.degraded_parks += other.degraded_parks;
        self.degraded_reclaims += other.degraded_reclaims;
        self.rollbacks += other.rollbacks;
    }
}

/// Whether the engine is serving any routes from the degraded (parked in
/// spillover TCAM) path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DegradedMode {
    /// Every route has a healthy Index Table encoding (or is a regular
    /// setup-time spill).
    #[default]
    Normal,
    /// Some routes are served only because they were parked in the
    /// spillover TCAM after a failed re-setup. Lookups remain correct but
    /// the TCAM headroom for future setup failures is reduced.
    Degraded {
        /// Number of parked keys across all sub-cells.
        parked_keys: usize,
    },
}

impl DegradedMode {
    /// Whether any key is parked.
    pub fn is_degraded(&self) -> bool {
        matches!(self, DegradedMode::Degraded { .. })
    }
}

/// A consolidated health snapshot of one engine: update classification,
/// recovery counters, degraded-mode status and spillover occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Incremental-update classification counters.
    pub updates: crate::update::UpdateStats,
    /// Batched-update counters (windows published, coalescing and
    /// rebuild-unit sharing wins) — see [`crate::ChiselLpm::apply_batch`].
    pub batch: crate::update::BatchStats,
    /// Re-setup retry / degradation / rollback counters.
    pub recovery: RecoveryStats,
    /// Degraded-mode status.
    pub degraded: DegradedMode,
    /// Routes currently installed.
    pub routes: usize,
    /// Live collapsed groups across all sub-cells.
    pub groups: usize,
    /// Spillover TCAM entries in use (regular spills + degraded parks).
    pub spill_len: usize,
    /// Total spillover TCAM capacity across all sub-cells.
    pub spill_capacity: usize,
    /// Partition re-setups performed since build.
    pub resetups: u64,
}

/// On-chip storage of one Chisel instance, broken down by table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageBreakdown {
    /// Index Table bits (`m` locations × pointer width).
    pub index_bits: u64,
    /// Filter Table bits (key width + dirty bit per location).
    pub filter_bits: u64,
    /// Bit-vector Table bits (`2^stride` + result-pointer width each).
    pub bitvec_bits: u64,
}

impl StorageBreakdown {
    /// Total on-chip bits.
    pub fn total_bits(&self) -> u64 {
        self.index_bits + self.filter_bits + self.bitvec_bits
    }

    /// Total in megabits (the unit of the paper's figures).
    pub fn total_mbits(&self) -> f64 {
        self.total_bits() as f64 / 1.0e6
    }

    /// Bytes per prefix for a table of `n` prefixes.
    pub fn bytes_per_prefix(&self, n: usize) -> f64 {
        self.total_bits() as f64 / 8.0 / n.max(1) as f64
    }
}

/// The deterministic worst-case storage model (Section 4.3.2): sized for
/// `n` original prefixes regardless of their distribution — Index Table
/// depth `m_per_key * n`, Filter and Bit-vector Tables depth `n`.
///
/// `with_wildcards = false` drops the Bit-vector Table (the Figure 8
/// comparison assumes a single exact-match table).
pub fn chisel_worst_case(
    family: AddressFamily,
    n: usize,
    k_unused_for_storage: usize,
    m_per_key: f64,
    stride: u8,
    with_wildcards: bool,
) -> StorageBreakdown {
    let _ = k_unused_for_storage; // k shapes m via m_per_key; kept for call-site clarity
    let m = (n as f64 * m_per_key).ceil() as u64;
    let ptr_bits = addr_bits(n) as u64;
    let key_bits = family.width() as u64;
    // Result-pointer width: the Result Table holds >= n next hops.
    let result_ptr_bits = addr_bits(2 * n.max(1)) as u64;
    StorageBreakdown {
        index_bits: m * ptr_bits,
        filter_bits: n as u64 * (key_bits + 1),
        bitvec_bits: if with_wildcards {
            n as u64 * ((1u64 << stride) + result_ptr_bits)
        } else {
            0
        },
    }
}

/// Average-case storage when the actual number of collapsed groups is
/// known: the Filter/Bit-vector tables need one location per *group*, not
/// per original prefix.
pub fn chisel_actual(
    family: AddressFamily,
    groups: usize,
    original_prefixes: usize,
    m_per_key: f64,
    stride: u8,
) -> StorageBreakdown {
    let m = (groups as f64 * m_per_key).ceil() as u64;
    let ptr_bits = addr_bits(groups.max(2)) as u64;
    let key_bits = family.width() as u64;
    let result_ptr_bits = addr_bits(2 * original_prefixes.max(1)) as u64;
    StorageBreakdown {
        index_bits: m * ptr_bits,
        filter_bits: groups as u64 * (key_bits + 1),
        bitvec_bits: groups as u64 * ((1u64 << stride) + result_ptr_bits),
    }
}

/// Storage of the *naive* false-positive-elimination layout the paper's
/// Section 4.2 argues against: keys stored directly alongside values in a
/// Result Table of `m = m_per_key * n` locations, with the Index Table
/// encoding only `log2(k)`-bit hash selectors.
pub fn naive_key_storage(
    family: AddressFamily,
    n: usize,
    k: usize,
    m_per_key: f64,
) -> StorageBreakdown {
    let m = (n as f64 * m_per_key).ceil() as u64;
    let key_bits = family.width() as u64;
    StorageBreakdown {
        index_bits: m * addr_bits(k) as u64,
        // keys live in every one of the m result locations
        filter_bits: m * (key_bits + 1),
        bitvec_bits: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_design_point_bytes_per_prefix() {
        // Paper Section 4.1: k=3, m/n=3 yields roughly 8 bytes per IPv4
        // prefix (our layout lands slightly above: 3·log2(n) + 33 bits).
        let n = 256 * 1024;
        let s = chisel_worst_case(AddressFamily::V4, n, 3, 3.0, 4, false);
        let bpp = s.bytes_per_prefix(n);
        assert!((7.0..14.0).contains(&bpp), "bytes/prefix = {bpp}");
    }

    #[test]
    fn pointer_indirection_beats_naive() {
        // Section 4.2: the two-level layout saves storage vs storing keys
        // in all m result locations — more for IPv6 than IPv4.
        let n = 256 * 1024;
        let chisel4 = chisel_worst_case(AddressFamily::V4, n, 3, 3.0, 4, false).total_bits();
        let naive4 = naive_key_storage(AddressFamily::V4, n, 3, 3.0).total_bits();
        let chisel6 = chisel_worst_case(AddressFamily::V6, n, 3, 3.0, 4, false).total_bits();
        let naive6 = naive_key_storage(AddressFamily::V6, n, 3, 3.0).total_bits();
        let save4 = 1.0 - chisel4 as f64 / naive4 as f64;
        let save6 = 1.0 - chisel6 as f64 / naive6 as f64;
        assert!(save4 > 0.10, "IPv4 saving {save4}");
        assert!(
            save6 > save4,
            "IPv6 saving {save6} should exceed IPv4 {save4}"
        );
        assert!(save6 > 0.40, "IPv6 saving {save6}");
    }

    #[test]
    fn ipv6_roughly_doubles_not_quadruples() {
        // Figure 12: quadrupling the key width only widens the Filter
        // Table, roughly doubling total storage.
        let n = 512 * 1024;
        let v4 = chisel_worst_case(AddressFamily::V4, n, 3, 3.0, 4, true).total_bits() as f64;
        let v6 = chisel_worst_case(AddressFamily::V6, n, 3, 3.0, 4, true).total_bits() as f64;
        let ratio = v6 / v4;
        assert!((1.5..2.6).contains(&ratio), "IPv6/IPv4 ratio = {ratio}");
    }

    #[test]
    fn actual_scales_with_groups_not_prefixes() {
        let a = chisel_actual(AddressFamily::V4, 1000, 4000, 3.0, 4);
        let b = chisel_actual(AddressFamily::V4, 4000, 4000, 3.0, 4);
        assert!(a.total_bits() < b.total_bits() / 2);
    }

    #[test]
    fn trace_totals() {
        let t = LookupTrace {
            index_reads: 7,
            filter_reads: 1,
            bitvec_reads: 1,
            result_reads: 1,
            spill_hits: 0,
            cache_hits: 0,
            cache_misses: 1,
            degraded_hits: 0,
            cache_lines_touched: 6,
        };
        assert_eq!(t.total_reads(), 10);
        assert_eq!(LookupTrace::SEQUENTIAL_DEPTH, 4);
    }

    #[test]
    fn trace_merge_sums_every_field() {
        let a = LookupTrace {
            index_reads: 1,
            filter_reads: 2,
            bitvec_reads: 3,
            result_reads: 4,
            spill_hits: 5,
            cache_hits: 6,
            cache_misses: 7,
            degraded_hits: 8,
            cache_lines_touched: 9,
        };
        let b = LookupTrace {
            index_reads: 10,
            filter_reads: 20,
            bitvec_reads: 30,
            result_reads: 40,
            spill_hits: 50,
            cache_hits: 60,
            cache_misses: 70,
            degraded_hits: 80,
            cache_lines_touched: 90,
        };
        let mut m = a;
        m.merge(&b);
        assert_eq!(
            m,
            LookupTrace {
                index_reads: 11,
                filter_reads: 22,
                bitvec_reads: 33,
                result_reads: 44,
                spill_hits: 55,
                cache_hits: 66,
                cache_misses: 77,
                degraded_hits: 88,
                cache_lines_touched: 99,
            }
        );
        // Merging the default is the identity.
        let mut id = a;
        id.merge(&LookupTrace::default());
        assert_eq!(id, a);
    }
}
