//! Epoch-based snapshot publication: the lock-free read path under
//! [`crate::SharedChisel`].
//!
//! A [`SnapshotCell<T>`] holds one immutable snapshot (an `Arc<T>`) that
//! readers borrow without ever blocking the writer, and that the writer
//! replaces wholesale (`store`) without ever blocking readers. It is the
//! software analogue of the paper's Section 4.4 split: the line-card
//! software shadow prepares a new set of table memories off to the side
//! and then flips the hardware engine over to them in one atomic step,
//! while the data path keeps forwarding against the old memories.
//!
//! The batched update engine ([`crate::ChiselLpm::apply_batch`]) leans on
//! this same mechanism to overlap re-setups with serving: a whole update
//! window — including every parallel partition re-setup it triggers — is
//! staged on the writer's private clone and published as **one** snapshot
//! generation via a single `store`. Readers pinned mid-batch keep the
//! pre-batch snapshot; readers pinning after the flip see the post-batch
//! snapshot; no interleaving in between is ever observable, so lookup
//! tail latency stays flat no matter how many re-setups the window needs.
//!
//! # Protocol
//!
//! The cell keeps a global `epoch` counter, the `current` snapshot
//! pointer, a fixed array of reader `slots`, and a `retired` list of
//! (pointer, retire-epoch) pairs awaiting reclamation.
//!
//! *Readers* pin before touching the snapshot:
//!
//! 1. read `epoch`, claim a free slot by CAS-ing `IDLE -> epoch`,
//! 2. load `current` and use it,
//! 3. release the slot (`slot = IDLE`) when the guard drops.
//!
//! *Writers* publish a new snapshot:
//!
//! 1. swap `current` to the new pointer,
//! 2. bump `epoch` (say to `E`),
//! 3. push the old pointer onto `retired` tagged with `E`,
//! 4. reclaim every retired entry `(ptr, E')` such that every non-idle
//!    slot holds an epoch `>= E'`.
//!
//! # Memory-ordering argument
//!
//! All epoch/slot/pointer atomics use `SeqCst`, so every load and store
//! below participates in one total order; the argument only needs that
//! order plus Rust's coherence rules.
//!
//! A retired pointer `(old, E)` is freed only when the reclaim scan sees
//! each slot idle or pinned at an epoch `>= E`. Consider any reader `R`
//! that could still dereference `old`:
//!
//! - If `R`'s slot store (step 1) is ordered *before* the scan's load of
//!   that slot, the scan observes `R`'s pinned epoch `e`. `R` read `e`
//!   from `epoch` before the writer bumped it to `E` (otherwise
//!   `e >= E` and `R` pinned after the bump — see next bullet), so
//!   `e < E` and the scan refuses to free `old`. Safe.
//! - If `R`'s slot store is ordered *after* the scan's load, then `R`'s
//!   subsequent load of `current` (step 2) is also ordered after the
//!   scan — and the scan itself is ordered after the writer's swap
//!   (step 1 of the writer, same thread). So `R` loads the *new*
//!   pointer and never sees `old` at all. Safe.
//! - A reader pinned at `e >= E` read `epoch` after the bump, which the
//!   writer performed after the swap; by the total order its `current`
//!   load returns the new pointer. Safe.
//!
//! Publishing a *stale* epoch (the reader loaded `epoch`, then the
//! writer bumped it, then the reader's CAS landed) is conservative: it
//! can only make the pinned epoch smaller, which delays reclamation but
//! never permits it. No re-check loop is needed.
//!
//! Readers therefore never wait on the writer: pinning is a bounded CAS
//! over the slot array (a slot is practically always free — slots are
//! held only for the duration of one lookup), and a stalled reader only
//! delays *freeing* old snapshots, never the publication of new ones.
//!
//! # Machine-checked counterpart
//!
//! The prose ordering argument above is not the only line of defense:
//! under `RUSTFLAGS="--cfg loom_lite"` this module compiles against the
//! virtual atomics of the vendored `loom-lite` model checker, and the
//! model tests in `tests/loom_snapshot.rs` *exhaustively* re-verify the
//! protocol — no use-after-free, no double-free, no leaked snapshot, no
//! stale read — across every bounded-preemption interleaving of
//! 2-reader/1-writer and 1-reader/2-publication schedules. The scheme is
//! additionally exercised by the interleaving stress tests in
//! `tests/concurrent.rs` and the unit tests below.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

#[cfg(not(loom_lite))]
use std::sync::{
    atomic::{AtomicPtr, AtomicU64, Ordering::SeqCst},
    Mutex,
};

#[cfg(loom_lite)]
use loom_lite::sync::{
    atomic::{AtomicPtr, AtomicU64, Ordering::SeqCst},
    Mutex,
};

/// Number of concurrent reader pins supported without spinning. Pins are
/// held only across one lookup, so 128 concurrently-pinned readers is far
/// beyond any realistic line-card thread count.
#[cfg(not(loom_lite))]
const SLOTS: usize = 128;

/// Under the model checker the schedule space grows with every atomic the
/// pin loop touches; two slots cover the 2-reader model tests exactly.
#[cfg(loom_lite)]
const SLOTS: usize = 2;

/// Sentinel for an unclaimed reader slot. Epochs start at 1 so the
/// sentinel never collides with a real epoch.
const IDLE: u64 = 0;

/// A single atomically-replaceable snapshot with epoch-pinned readers.
pub struct SnapshotCell<T> {
    /// The current snapshot, as a raw `Arc<T>` pointer.
    current: AtomicPtr<T>,
    /// Global epoch; bumped after every `store`.
    epoch: AtomicU64,
    /// Reader pin slots: `IDLE` or the epoch the reader pinned at.
    slots: Box<[AtomicU64]>,
    /// Replaced snapshots awaiting reclamation: `(ptr, retire_epoch)`.
    retired: Mutex<Vec<(*mut T, u64)>>,
}

// SAFETY: the raw pointers in `current` and `retired` are owning
// `Arc<T>` pointers. The cell hands `&T` / `Arc<T>` to arbitrary threads
// and drops `T` on whichever thread reclaims, so `T: Send + Sync` is
// required and sufficient for both bounds.
unsafe impl<T: Send + Sync> Send for SnapshotCell<T> {}
// SAFETY: same argument as `Send`; all shared-state mutation goes through
// atomics or the `retired` mutex.
unsafe impl<T: Send + Sync> Sync for SnapshotCell<T> {}

impl<T> SnapshotCell<T> {
    /// Creates a cell holding `initial` as the current snapshot.
    pub fn new(initial: Arc<T>) -> Self {
        let initial = Arc::into_raw(initial).cast_mut();
        #[cfg(loom_lite)]
        loom_lite::track::publish(initial as usize);
        SnapshotCell {
            current: AtomicPtr::new(initial),
            epoch: AtomicU64::new(1),
            slots: (0..SLOTS).map(|_| AtomicU64::new(IDLE)).collect(),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Claims a reader slot pinned at the current epoch.
    fn pin(&self) -> usize {
        loop {
            let e = self.epoch.load(SeqCst);
            for (i, slot) in self.slots.iter().enumerate() {
                if slot.compare_exchange(IDLE, e, SeqCst, SeqCst).is_ok() {
                    return i;
                }
            }
            // All slots busy: readers hold slots only across one lookup,
            // so one will free imminently.
            std::hint::spin_loop();
        }
    }

    /// Borrows the current snapshot without touching its reference count.
    ///
    /// The guard pins a reader slot; old snapshots cannot be freed while
    /// it lives, so keep guards short-lived (one lookup / one batch).
    pub fn load(&self) -> SnapshotGuard<'_, T> {
        let slot = self.pin();
        // Safe per the module protocol: pinned, so whatever we load here
        // cannot be reclaimed until the guard drops.
        let ptr = self.current.load(SeqCst);
        #[cfg(loom_lite)]
        loom_lite::track::pin(ptr as usize);
        SnapshotGuard {
            cell: self,
            slot,
            ptr,
        }
    }

    /// Clones out the current snapshot as an owned `Arc`.
    ///
    /// Costs one atomic reference-count increment; use for long-lived
    /// borrows (differential checks, background work) where holding a
    /// pin guard would stall reclamation.
    pub fn load_owned(&self) -> Arc<T> {
        let guard = self.load();
        // SAFETY: `ptr` came from `Arc::into_raw` and is kept alive by
        // the pin; bumping the count before the guard drops makes the
        // clone independent of the pin.
        unsafe {
            Arc::increment_strong_count(guard.ptr);
            Arc::from_raw(guard.ptr)
        }
    }

    /// Publishes `new` as the current snapshot and retires the old one.
    ///
    /// Safe to call concurrently with readers and other writers; callers
    /// that need read-modify-write atomicity (as [`crate::SharedChisel`]
    /// does) must serialize their stores externally.
    pub fn store(&self, new: Arc<T>) {
        let new_ptr = Arc::into_raw(new).cast_mut();
        #[cfg(loom_lite)]
        loom_lite::track::publish(new_ptr as usize);
        // Holding the retired lock across swap+bump keeps concurrent
        // stores' (swap, retire-epoch) pairs consistent with each other.
        let mut retired = self.retired.lock().expect("snapshot retire list poisoned");
        let old = self.current.swap(new_ptr, SeqCst);
        let retire_epoch = self.epoch.fetch_add(1, SeqCst) + 1;
        retired.push((old, retire_epoch));
        self.reclaim(&mut retired);
    }

    /// The current epoch (equivalently: 1 + number of `store`s so far).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(SeqCst)
    }

    /// Number of retired snapshots not yet reclaimed (test/debug aid).
    pub fn retired_len(&self) -> usize {
        self.retired
            .lock()
            .expect("snapshot retire list poisoned")
            .len()
    }

    /// Attempts to reclaim retired snapshots right now (readers pinned at
    /// old epochs may keep some alive).
    pub fn collect(&self) {
        let mut retired = self.retired.lock().expect("snapshot retire list poisoned");
        self.reclaim(&mut retired);
    }

    /// Frees every retired entry no pinned reader can still observe: all
    /// non-idle slots must show an epoch `>=` the entry's retire epoch.
    fn reclaim(&self, retired: &mut Vec<(*mut T, u64)>) {
        let min_pinned = self
            .slots
            .iter()
            .map(|s| s.load(SeqCst))
            .filter(|&e| e != IDLE)
            .min()
            .unwrap_or(u64::MAX);
        retired.retain(|&(ptr, retire_epoch)| {
            if retire_epoch <= min_pinned {
                // Declared before the real drop so the model checker
                // catches a protocol bug instead of corrupting memory.
                #[cfg(loom_lite)]
                loom_lite::track::free(ptr as usize);
                // SAFETY: the pointer came from `Arc::into_raw` in
                // `store`, and per the module-level argument no reader
                // can reach it any more; this drops the Arc's strong
                // count we took over at publication.
                unsafe { drop(Arc::from_raw(ptr)) };
                false
            } else {
                true
            }
        });
    }
}

impl<T> Drop for SnapshotCell<T> {
    fn drop(&mut self) {
        // Exclusive access: no guards can outlive the cell (they borrow
        // it), so everything can be released unconditionally. Recover
        // from poisoning (a writer that panicked mid-`store`): the list
        // itself is always structurally valid, and panicking here would
        // abort if the cell is dropped during that very unwind.
        let retired = match self.retired.get_mut() {
            Ok(r) => r,
            Err(poisoned) => poisoned.into_inner(),
        };
        for &(ptr, _) in retired.iter() {
            #[cfg(loom_lite)]
            loom_lite::track::free(ptr as usize);
            // SAFETY: owning `Arc::into_raw` pointers from `store`; the
            // cell is being dropped, so no guard borrows it any more.
            unsafe { drop(Arc::from_raw(ptr)) };
        }
        retired.clear();
        let current = self.current.load(SeqCst);
        #[cfg(loom_lite)]
        loom_lite::track::free(current as usize);
        // SAFETY: `current` always holds the owning pointer of the live
        // snapshot (`new` / `store` put it there via `Arc::into_raw`).
        unsafe { drop(Arc::from_raw(current)) };
    }
}

impl<T: fmt::Debug> fmt::Debug for SnapshotCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotCell")
            .field("epoch", &self.epoch())
            .field("retired", &self.retired_len())
            .finish_non_exhaustive()
    }
}

/// A pinned borrow of the cell's current snapshot.
///
/// Dereferences to `T`. Dropping it releases the reader slot.
pub struct SnapshotGuard<'a, T> {
    cell: &'a SnapshotCell<T>,
    slot: usize,
    ptr: *mut T,
}

impl<T> Deref for SnapshotGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: pinned since before the pointer was loaded, so the
        // snapshot cannot have been reclaimed.
        unsafe { &*self.ptr }
    }
}

impl<T> Drop for SnapshotGuard<'_, T> {
    fn drop(&mut self) {
        self.cell.slots[self.slot].store(IDLE, SeqCst);
        // Declared after the slot release (and with no scheduling point
        // in between under the model checker) so the tracker's pinned
        // window coincides exactly with the protocol's slot-pin window.
        #[cfg(loom_lite)]
        loom_lite::track::unpin(self.ptr as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Payload whose drop is observable, with an internal invariant that
    /// breaks visibly on a torn or reclaimed read.
    struct Payload {
        value: u64,
        check: u64,
        drops: Arc<AtomicUsize>,
    }

    impl Payload {
        fn new(value: u64, drops: Arc<AtomicUsize>) -> Arc<Self> {
            Arc::new(Payload {
                value,
                check: value.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                drops,
            })
        }

        fn assert_intact(&self) {
            assert_eq!(self.check, self.value.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
    }

    impl Drop for Payload {
        fn drop(&mut self) {
            self.drops.fetch_add(1, SeqCst);
        }
    }

    #[test]
    fn load_sees_latest_store() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = SnapshotCell::new(Payload::new(0, drops.clone()));
        for i in 1..=100 {
            cell.store(Payload::new(i, drops.clone()));
            assert_eq!(cell.load().value, i);
        }
        assert_eq!(cell.epoch(), 101);
        drop(cell);
        assert_eq!(
            drops.load(SeqCst),
            101,
            "every snapshot dropped exactly once"
        );
    }

    #[test]
    fn pinned_guard_blocks_reclaim_until_dropped() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = SnapshotCell::new(Payload::new(1, drops.clone()));
        let guard = cell.load();
        cell.store(Payload::new(2, drops.clone()));
        cell.collect();
        // The pinned snapshot survives and stays intact.
        guard.assert_intact();
        assert_eq!(guard.value, 1);
        assert_eq!(drops.load(SeqCst), 0);
        assert_eq!(cell.retired_len(), 1);
        drop(guard);
        cell.collect();
        assert_eq!(drops.load(SeqCst), 1, "unpinned snapshot reclaimed");
        assert_eq!(cell.retired_len(), 0);
    }

    #[test]
    fn owned_snapshot_outlives_replacement_and_collect() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = SnapshotCell::new(Payload::new(7, drops.clone()));
        let snap = cell.load_owned();
        cell.store(Payload::new(8, drops.clone()));
        cell.collect();
        // Reclaimed from the cell's side (the Arc clone keeps it alive).
        assert_eq!(cell.retired_len(), 0);
        snap.assert_intact();
        assert_eq!(snap.value, 7);
        assert_eq!(drops.load(SeqCst), 0);
        drop(snap);
        assert_eq!(drops.load(SeqCst), 1);
    }

    #[test]
    fn concurrent_load_store_stress() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(SnapshotCell::new(Payload::new(0, drops.clone())));
        let stop = Arc::new(AtomicU64::new(0));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = cell.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    while stop.load(SeqCst) == 0 {
                        let g = cell.load();
                        g.assert_intact();
                        // Values are published in increasing order and a
                        // reader can never observe them going backwards.
                        assert!(g.value >= last, "snapshot went backwards");
                        last = g.value;
                    }
                })
            })
            .collect();
        for i in 1..=2_000 {
            cell.store(Payload::new(i, drops.clone()));
        }
        stop.store(1, SeqCst);
        for r in readers {
            r.join().unwrap();
        }
        drop(cell);
        assert_eq!(
            drops.load(SeqCst),
            2_001,
            "no snapshot leaked or double-freed"
        );
    }
}
