//! Chunked copy-on-write tables for the snapshot-published engine.
//!
//! The concurrent wrapper ([`crate::SharedChisel`]) publishes a fresh
//! engine snapshot per update, so the per-update cost is the cost of
//! *cloning whatever the update touches*. The paper's own update story is
//! that "the modified portions of the data structure are transferred to
//! the hardware engine" (Section 4.4) — i.e. updates move blocks, not
//! tables. [`CowTable`] realizes that: a fixed-length table stored as a
//! two-level radix of `Arc`-shared chunks. Leaf chunks hold [`CHUNK`]
//! entries; super-chunks hold [`SUPER`] leaf pointers. Cloning the table
//! copies only the small top-level vector of super-chunk pointers (a few
//! dozen for a 100k-entry table); mutating entry `i` deep-copies `i`'s
//! super-chunk (pointer copies) and leaf chunk (entry copies) when they
//! are still shared. A route flap therefore republishes a handful of
//! 64-entry blocks — Filter, Bit-vector and Result Table rows — while
//! every other block stays physically shared with the previous snapshot.
//!
//! Two levels matter, not just one: with a flat chunk vector the
//! *unavoidable* part of every clone is `len / CHUNK` atomic increments
//! (and as many decrements when the old snapshot retires), which at
//! backbone table sizes is thousands of scattered RMWs per update — that
//! was measured to dominate the publication cost. The radix caps the
//! always-copied portion at `len / (CHUNK * SUPER)` pointers.
//!
//! Reads go through plain indexing and stay branch-free on the lookup
//! path (two shifts and masks).

use std::ops::Index;
use std::sync::Arc;

/// Entries per leaf chunk. Small enough that a single-slot update copies
/// a modest block, large enough to amortize the `Arc` headers.
const CHUNK: usize = 64;
/// Leaf chunks per super-chunk: a super-chunk spans 4096 entries.
const SUPER: usize = 64;
const SHIFT: u32 = CHUNK.trailing_zeros();
const MASK: usize = CHUNK - 1;
const SUPER_SHIFT: u32 = SUPER.trailing_zeros();
const SUPER_MASK: usize = SUPER - 1;

type Leaf<T> = Arc<Vec<T>>;

/// A fixed-length table of `T` stored as a two-level radix of
/// `Arc`-shared chunks.
#[derive(Debug, Clone)]
pub(crate) struct CowTable<T> {
    supers: Vec<Arc<Vec<Leaf<T>>>>,
    len: usize,
}

impl<T: Clone> CowTable<T> {
    /// Builds a table of `len` entries from an index function.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> T) -> Self {
        let mut leaves = Vec::with_capacity(len.div_ceil(CHUNK));
        let mut i = 0;
        while i < len {
            let n = CHUNK.min(len - i);
            leaves.push(Arc::new((i..i + n).map(&mut f).collect::<Vec<T>>()));
            i += n;
        }
        let supers = leaves.chunks(SUPER).map(|s| Arc::new(s.to_vec())).collect();
        CowTable { supers, len }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Shared read access to entry `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&T> {
        if i < self.len {
            let leaf = i >> SHIFT;
            Some(&self.supers[leaf >> SUPER_SHIFT][leaf & SUPER_MASK][i & MASK])
        } else {
            None
        }
    }

    /// Mutable access to entry `i`, deep-copying only its super-chunk
    /// (pointers) and leaf chunk (entries) if they are still shared with
    /// another snapshot.
    #[inline]
    pub fn get_mut(&mut self, i: usize) -> Option<&mut T> {
        if i < self.len {
            let leaf = i >> SHIFT;
            let sup = Arc::make_mut(&mut self.supers[leaf >> SUPER_SHIFT]);
            Some(&mut Arc::make_mut(&mut sup[leaf & SUPER_MASK])[i & MASK])
        } else {
            None
        }
    }

    /// Grows the table to `new_len`, filling new entries with `value`.
    /// Shrinking is not supported (the engine only ever provisions more).
    pub fn resize(&mut self, new_len: usize, value: T) {
        assert!(new_len >= self.len, "CowTable cannot shrink");
        while self.len < new_len {
            if self.len.is_multiple_of(CHUNK) {
                // Start a fresh leaf chunk (and a fresh super-chunk when
                // the previous one is full).
                let n = CHUNK.min(new_len - self.len);
                let leaf = Arc::new(vec![value.clone(); n]);
                let leaves = self.len >> SHIFT;
                if leaves.is_multiple_of(SUPER) {
                    self.supers.push(Arc::new(vec![leaf]));
                } else {
                    Arc::make_mut(self.supers.last_mut().expect("super exists")).push(leaf);
                }
                self.len += n;
            } else {
                // Top up the trailing partial leaf chunk.
                let sup = Arc::make_mut(self.supers.last_mut().expect("super exists"));
                let last = Arc::make_mut(sup.last_mut().expect("partial chunk exists"));
                let n = (CHUNK - last.len()).min(new_len - self.len);
                last.extend(std::iter::repeat_n(value.clone(), n));
                self.len += n;
            }
        }
    }

    /// Iterates entries in index order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.supers
            .iter()
            .flat_map(|s| s.iter())
            .flat_map(|c| c.iter())
    }
}

impl<T: Clone> Index<usize> for CowTable<T> {
    type Output = T;

    #[inline]
    fn index(&self, i: usize) -> &T {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let leaf = i >> SHIFT;
        &self.supers[leaf >> SUPER_SHIFT][leaf & SUPER_MASK][i & MASK]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_round_trips() {
        // Spans multiple super-chunks.
        let n = CHUNK * SUPER + 3 * CHUNK + 7;
        let t = CowTable::from_fn(n, |i| i * 3);
        assert_eq!(t.len(), n);
        for i in 0..n {
            assert_eq!(t[i], i * 3);
            assert_eq!(t.get(i), Some(&(i * 3)));
        }
        assert_eq!(t.get(n), None);
        assert_eq!(t.iter().copied().collect::<Vec<_>>()[777], 777 * 3);
    }

    #[test]
    fn mutation_clones_only_the_touched_chunk() {
        let mut a = CowTable::from_fn(CHUNK * (SUPER + 4), |i| i);
        let b = a.clone();
        *a.get_mut(CHUNK + 1).unwrap() = 9999;
        assert_eq!(a[CHUNK + 1], 9999);
        assert_eq!(b[CHUNK + 1], CHUNK + 1);
        // Super-chunk 0 diverged (its pointer vector was copied), but of
        // its leaves only chunk 1 was deep-copied; super-chunk 1 is still
        // fully shared.
        assert!(!Arc::ptr_eq(&a.supers[0], &b.supers[0]));
        assert!(Arc::ptr_eq(&a.supers[1], &b.supers[1]));
        for (i, (ca, cb)) in a.supers[0].iter().zip(b.supers[0].iter()).enumerate() {
            assert_eq!(Arc::ptr_eq(ca, cb), i != 1, "leaf {i}");
        }
    }

    #[test]
    fn resize_grows_in_place_and_by_chunks() {
        let mut t = CowTable::from_fn(10, |i| i);
        t.resize(CHUNK + 5, 42);
        assert_eq!(t.len(), CHUNK + 5);
        assert_eq!(t[9], 9);
        assert_eq!(t[10], 42);
        assert_eq!(t[CHUNK + 4], 42);
        // A shared holder of the short table is unaffected by the growth.
        let short = t.clone();
        t.resize(CHUNK * (SUPER + 2), 7);
        assert_eq!(short.len(), CHUNK + 5);
        assert_eq!(t.len(), CHUNK * (SUPER + 2));
        assert_eq!(t[CHUNK * SUPER + 1], 7);
        assert_eq!(t.supers.len(), 2);
        assert_eq!(t.iter().count(), t.len());
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn resize_rejects_shrinking() {
        let mut t = CowTable::from_fn(10, |i| i);
        t.resize(5, 0);
    }

    #[test]
    fn empty_table() {
        let t: CowTable<u32> = CowTable::from_fn(0, |_| 0);
        assert_eq!(t.len(), 0);
        assert_eq!(t.get(0), None);
        assert_eq!(t.iter().count(), 0);
    }
}
