//! A shared Chisel engine for the line-card split the paper describes
//! (Section 4.4): the software shadow applies updates on the network
//! processor while the forwarding path keeps serving lookups.
//!
//! [`SharedChisel`] publishes immutable engine snapshots through a
//! [`SnapshotCell`] instead of taking a read-write lock. Lookups pin the
//! current snapshot without blocking (and without bumping a reference
//! count); the writer clones the engine — cheap, because every table is
//! chunked copy-on-write (see `crate::cow`) and Index Table partitions
//! sit behind `Arc`s, so the clone copies pointers and the update then
//! deep-copies only the chunks and the partition it actually touches —
//! applies the update off to the side, and swings the snapshot pointer in
//! one atomic step. This mirrors the hardware flow where "the modified
//! portions of the data structure are transferred to the hardware engine"
//! while the data path forwards against the old tables.
//!
//! Consequences of the snapshot discipline:
//!
//! - Readers are never blocked by updates, and every lookup (or batch)
//!   sees one internally-consistent engine state.
//! - A failed update ([`ChiselLpm::announce`] returning an error) is
//!   atomic: the snapshot is only published on success, so readers never
//!   observe a partially-applied update.
//! - Each snapshot carries a [`EngineSnapshot::generation`] counter, so
//!   external observers can correlate lookups with a specific published
//!   routing state (the torture tests rely on this).

use std::ops::Deref;
use std::sync::{Arc, Mutex};

use chisel_prefix::{Key, NextHop, Prefix, RoutingTable};

use crate::snapshot::SnapshotCell;
use crate::{
    ChiselConfig, ChiselError, ChiselLpm, EngineStats, FlowCache, UpdateKind, UpdateStats,
};

/// One published engine state: the engine plus its generation stamp.
///
/// Dereferences to [`ChiselLpm`], so snapshot holders can run any
/// read-only engine method directly.
#[derive(Debug)]
pub struct EngineSnapshot {
    generation: u64,
    engine: ChiselLpm,
}

impl EngineSnapshot {
    /// How many updates had been published when this snapshot was taken
    /// (the freshly-built engine is generation 0).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The engine state itself.
    pub fn engine(&self) -> &ChiselLpm {
        &self.engine
    }
}

impl Deref for EngineSnapshot {
    type Target = ChiselLpm;

    fn deref(&self) -> &ChiselLpm {
        &self.engine
    }
}

/// A thread-safe, cloneable handle to a Chisel engine.
///
/// ```
/// use chisel_core::{SharedChisel, ChiselConfig};
/// use chisel_prefix::{RoutingTable, NextHop};
///
/// # fn main() -> Result<(), chisel_core::ChiselError> {
/// let mut table = RoutingTable::new_v4();
/// table.insert("10.0.0.0/8".parse().unwrap(), NextHop::new(1));
/// let shared = SharedChisel::build(&table, ChiselConfig::ipv4())?;
///
/// let handle = shared.clone();
/// let t = std::thread::spawn(move || handle.lookup("10.1.1.1".parse().unwrap()));
/// shared.announce("11.0.0.0/8".parse().unwrap(), NextHop::new(2))?;
/// assert_eq!(t.join().unwrap(), Some(NextHop::new(1)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SharedChisel {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    cell: SnapshotCell<EngineSnapshot>,
    /// Serializes writers: clone-apply-publish must be atomic with
    /// respect to other writers (readers need no lock at all).
    writer: Mutex<()>,
}

impl SharedChisel {
    /// Builds a shared engine over a routing table.
    ///
    /// # Errors
    ///
    /// Propagates [`ChiselLpm::build`] errors.
    pub fn build(table: &RoutingTable, config: ChiselConfig) -> Result<Self, ChiselError> {
        Ok(Self::from_engine(ChiselLpm::build(table, config)?))
    }

    /// Wraps an existing engine as generation 0.
    pub fn from_engine(engine: ChiselLpm) -> Self {
        Self::from_engine_at(engine, 0)
    }

    /// Wraps an existing engine, republishing at a specific generation.
    /// Crash recovery (`crate::journal`) uses this to re-enter the
    /// generation sequence exactly where the checkpoint froze it before
    /// replaying the journal tail.
    pub fn from_engine_at(engine: ChiselLpm, generation: u64) -> Self {
        SharedChisel {
            inner: Arc::new(Inner {
                cell: SnapshotCell::new(Arc::new(EngineSnapshot { generation, engine })),
                writer: Mutex::new(()),
            }),
        }
    }

    /// Longest-prefix-match lookup against the current snapshot.
    ///
    /// Never blocks on concurrent updates.
    pub fn lookup(&self, key: Key) -> Option<NextHop> {
        self.inner.cell.load().lookup(key)
    }

    /// Batched lookup against one consistent snapshot (see
    /// [`ChiselLpm::lookup_batch`]): every key in the batch is resolved
    /// against the same published generation.
    ///
    /// # Panics
    ///
    /// Panics if `keys` and `out` differ in length.
    pub fn lookup_batch(&self, keys: &[Key], out: &mut [Option<NextHop>]) {
        self.inner.cell.load().lookup_batch(keys, out);
    }

    /// An owned handle on the current snapshot: the engine state plus its
    /// generation, guaranteed not to change underneath the caller.
    pub fn snapshot(&self) -> Arc<EngineSnapshot> {
        self.inner.cell.load_owned()
    }

    /// Generation of the currently-published snapshot.
    pub fn generation(&self) -> u64 {
        self.inner.cell.load().generation()
    }

    /// Applies an announce and publishes the resulting snapshot.
    ///
    /// # Errors
    ///
    /// Propagates [`ChiselLpm::announce`] errors; on error no new
    /// snapshot is published (the update is atomic).
    pub fn announce(&self, prefix: Prefix, next_hop: NextHop) -> Result<UpdateKind, ChiselError> {
        self.update(|e| e.announce(prefix, next_hop))
    }

    /// Applies a withdraw and publishes the resulting snapshot.
    ///
    /// # Errors
    ///
    /// Propagates [`ChiselLpm::withdraw`] errors; on error no new
    /// snapshot is published.
    pub fn withdraw(&self, prefix: Prefix) -> Result<UpdateKind, ChiselError> {
        self.update(|e| e.withdraw(prefix))
    }

    /// Applies a whole update window ([`ChiselLpm::apply_batch`]) and
    /// publishes it as **one** snapshot generation: readers keep serving
    /// the pre-batch snapshot while the window's partition rebuilds run in
    /// parallel on the clone, and the post-batch snapshot appears
    /// atomically — a pinned reader observes either all of the window (its
    /// non-rejected events) or none of it, never a torn mix. Flow caches
    /// invalidate wholesale once per window, not once per event.
    ///
    /// # Errors
    ///
    /// Propagates [`ChiselLpm::apply_batch`] errors; on error the torn
    /// clone is discarded and no new snapshot is published.
    pub fn apply_batch(
        &self,
        events: &[crate::batch::RouteUpdate],
    ) -> Result<crate::batch::BatchReport, ChiselError> {
        self.update(|e| e.apply_batch(events))
    }

    /// Clone-apply-publish under the writer lock.
    fn update<T>(
        &self,
        f: impl FnOnce(&mut ChiselLpm) -> Result<T, ChiselError>,
    ) -> Result<T, ChiselError> {
        let _writers = self.inner.writer.lock().expect("writer lock poisoned");
        let current = self.inner.cell.load_owned();
        // Cheap: the Filter/Bit-vector/Result tables are chunked
        // copy-on-write and Index Table partitions are Arc-shared, so
        // this copies pointers. The update below then deep-copies only
        // the chunks and partition it touches (`Arc::make_mut`).
        let mut next = current.engine.clone();
        let out = f(&mut next)?;
        self.inner.cell.store(Arc::new(EngineSnapshot {
            generation: current.generation + 1,
            engine: next,
        }));
        Ok(out)
    }

    /// Number of routable prefixes in the current snapshot.
    pub fn len(&self) -> usize {
        self.inner.cell.load().len()
    }

    /// Whether the current snapshot holds no routes.
    pub fn is_empty(&self) -> bool {
        self.inner.cell.load().is_empty()
    }

    /// Update statistics of the current snapshot.
    pub fn update_stats(&self) -> UpdateStats {
        self.inner.cell.load().update_stats()
    }

    /// Consolidated health snapshot (recovery counters, degraded mode,
    /// spillover occupancy) of the current snapshot.
    pub fn engine_stats(&self) -> EngineStats {
        self.inner.cell.load().engine.engine_stats()
    }

    /// Runs a closure against the current snapshot (batched reads with a
    /// single snapshot acquisition).
    ///
    /// The snapshot is pinned for the closure's duration: long-running
    /// closures delay reclamation of replaced snapshots (but never block
    /// updates from publishing).
    pub fn with_engine<T>(&self, f: impl FnOnce(&ChiselLpm) -> T) -> T {
        f(&self.inner.cell.load().engine)
    }

    /// A per-thread reader handle with a private [`FlowCache`] of
    /// [`FlowCache::DEFAULT_CAPACITY`] slots in front of the snapshot
    /// path.
    pub fn reader(&self) -> CachedReader {
        self.reader_with_capacity(FlowCache::DEFAULT_CAPACITY)
    }

    /// A per-thread reader handle with a private [`FlowCache`] of at
    /// least `capacity` slots.
    pub fn reader_with_capacity(&self, capacity: usize) -> CachedReader {
        CachedReader {
            shared: self.clone(),
            cache: FlowCache::new(capacity),
        }
    }
}

/// A reader handle that fronts [`SharedChisel`] lookups with a private,
/// exclusively-owned [`FlowCache`].
///
/// The cache is owned by this handle (`&mut self` methods), never shared,
/// so the lock-free reader story is untouched: each lookup pins the
/// current snapshot exactly as [`SharedChisel::lookup`] does, and the
/// cache revalidates every entry against that snapshot's engine version.
/// A writer publishing an update bumps the version, which invalidates
/// every reader's cache wholesale on their next lookup — no writer ever
/// touches reader state.
///
/// Spawn one per forwarding thread via [`SharedChisel::reader`].
#[derive(Debug, Clone)]
pub struct CachedReader {
    shared: SharedChisel,
    cache: FlowCache,
}

impl CachedReader {
    /// Cached longest-prefix-match lookup against the current snapshot.
    /// Agrees with [`SharedChisel::lookup`] on every key at every
    /// generation.
    pub fn lookup(&mut self, key: Key) -> Option<NextHop> {
        let snap = self.shared.inner.cell.load();
        self.cache.lookup(snap.engine(), key)
    }

    /// Cached batch lookup against one consistent snapshot: hits are
    /// served from the cache, the missing lanes go through the engine's
    /// software-pipelined batch path.
    ///
    /// # Panics
    ///
    /// Panics if `keys` and `out` differ in length.
    pub fn lookup_batch(&mut self, keys: &[Key], out: &mut [Option<NextHop>]) {
        let snap = self.shared.inner.cell.load();
        self.cache.lookup_batch(snap.engine(), keys, out);
    }

    /// Like [`lookup_batch`](CachedReader::lookup_batch), additionally
    /// returning the generation of the snapshot the whole batch was
    /// answered against — the dataplane shards stamp every batch with it
    /// so answers can be differentially checked against a reference at
    /// the exact same generation.
    ///
    /// # Panics
    ///
    /// Panics if `keys` and `out` differ in length.
    pub fn lookup_batch_pinned(&mut self, keys: &[Key], out: &mut [Option<NextHop>]) -> u64 {
        let snap = self.shared.inner.cell.load();
        self.cache.lookup_batch(snap.engine(), keys, out);
        snap.generation()
    }

    /// [`lookup_batch_pinned`](CachedReader::lookup_batch_pinned) with an
    /// explicit lane depth for the miss sweep — the dataplane's
    /// [`ChiselLpm::lookup_batch_lanes`] knob, exposed per batch.
    ///
    /// # Panics
    ///
    /// Panics if `keys` and `out` differ in length.
    pub fn lookup_batch_pinned_lanes(
        &mut self,
        keys: &[Key],
        out: &mut [Option<NextHop>],
        lanes: usize,
    ) -> u64 {
        let snap = self.shared.inner.cell.load();
        self.cache
            .lookup_batch_lanes(snap.engine(), keys, out, lanes);
        snap.generation()
    }

    /// Like [`lookup_batch_pinned`](CachedReader::lookup_batch_pinned),
    /// accumulating per-table read counts (including `degraded_hits`)
    /// into `trace`. Misses walk the scalar traced data path — a
    /// diagnostic mode, not the throughput path.
    ///
    /// # Panics
    ///
    /// Panics if `keys` and `out` differ in length.
    pub fn lookup_batch_traced(
        &mut self,
        keys: &[Key],
        out: &mut [Option<NextHop>],
        trace: &mut crate::LookupTrace,
    ) -> u64 {
        let snap = self.shared.inner.cell.load();
        self.cache
            .lookup_batch_traced(snap.engine(), keys, out, trace);
        snap.generation()
    }

    /// The cache fronting this reader (hit/miss counters live here).
    pub fn cache(&self) -> &FlowCache {
        &self.cache
    }

    /// Empties the cache and zeroes its counters.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// The shared engine handle this reader draws snapshots from.
    pub fn shared(&self) -> &SharedChisel {
        &self.shared
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chisel_prefix::AddressFamily;

    fn shared() -> SharedChisel {
        let mut t = RoutingTable::new_v4();
        t.insert("10.0.0.0/8".parse().unwrap(), NextHop::new(1));
        SharedChisel::build(&t, ChiselConfig::ipv4()).unwrap()
    }

    #[test]
    fn lookups_from_many_threads() {
        let s = shared();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let h = s.clone();
                std::thread::spawn(move || {
                    for i in 0..5_000u128 {
                        let key = Key::from_raw(AddressFamily::V4, 0x0A00_0000 | (i & 0xFFFF));
                        assert_eq!(h.lookup(key), Some(NextHop::new(1)));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn updates_interleave_with_lookups() {
        let s = shared();
        let reader = {
            let h = s.clone();
            std::thread::spawn(move || {
                let mut hits = 0usize;
                for i in 0..20_000u128 {
                    let key = Key::from_raw(AddressFamily::V4, 0x0A00_0000 | (i & 0xFFFF));
                    if h.lookup(key).is_some() {
                        hits += 1;
                    }
                }
                hits
            })
        };
        for i in 0..500u32 {
            let p = chisel_prefix::Prefix::new(AddressFamily::V4, 0x0B00 + i as u128, 16).unwrap();
            s.announce(p, NextHop::new(i)).unwrap();
        }
        // Readers always saw a consistent engine (the /8 never left).
        assert_eq!(reader.join().unwrap(), 20_000);
        assert_eq!(s.len(), 501);
    }

    #[test]
    fn with_engine_batches() {
        let s = shared();
        let total = s.with_engine(|e| {
            (0..100u128)
                .filter(|&i| {
                    e.lookup(Key::from_raw(AddressFamily::V4, 0x0A00_0000 | i))
                        .is_some()
                })
                .count()
        });
        assert_eq!(total, 100);
    }

    #[test]
    fn generation_counts_published_updates() {
        let s = shared();
        assert_eq!(s.generation(), 0);
        s.announce("11.0.0.0/8".parse().unwrap(), NextHop::new(2))
            .unwrap();
        assert_eq!(s.generation(), 1);
        s.withdraw("11.0.0.0/8".parse().unwrap()).unwrap();
        assert_eq!(s.generation(), 2);
        // A rejected update publishes nothing.
        assert!(s
            .announce("2001:db8::/32".parse().unwrap(), NextHop::new(3))
            .is_err());
        assert_eq!(s.generation(), 2);
    }

    #[test]
    fn batch_publishes_one_generation_and_one_version() {
        use crate::batch::RouteUpdate;
        let s = shared();
        let gen0 = s.generation();
        let ver0 = s.with_engine(|e| e.version());
        let p: Prefix = "11.0.0.0/8".parse().unwrap();
        let events = vec![
            RouteUpdate::Announce(p, NextHop::new(2)),
            RouteUpdate::Withdraw(p),
            RouteUpdate::Announce(p, NextHop::new(3)),
            RouteUpdate::Announce("12.0.0.0/8".parse().unwrap(), NextHop::new(4)),
        ];
        let report = s.apply_batch(&events).unwrap();
        // One window → one generation, one flow-cache invalidation.
        assert_eq!(s.generation(), gen0 + 1);
        assert_eq!(s.with_engine(|e| e.version()), ver0 + 1);
        assert_eq!(report.ingested, 4);
        assert_eq!(report.coalesced, 2, "the flap pair must coalesce away");
        assert_eq!(report.applied_ops, 2);
        assert!(report.rejected_events.is_empty());
        let snap = s.snapshot();
        assert_eq!(
            snap.lookup("11.5.5.5".parse().unwrap()),
            Some(NextHop::new(3))
        );
        assert_eq!(
            snap.lookup("12.5.5.5".parse().unwrap()),
            Some(NextHop::new(4))
        );
        assert!(snap.verify().is_ok());
    }

    #[test]
    fn pinned_reader_never_sees_a_partial_batch() {
        use crate::batch::RouteUpdate;
        let s = shared();
        let pre = s.snapshot();
        let events: Vec<RouteUpdate> = (0..16u32)
            .map(|i| {
                RouteUpdate::Announce(
                    Prefix::new(AddressFamily::V4, u128::from(0x0D00 + i), 16).unwrap(),
                    NextHop::new(100 + i),
                )
            })
            .collect();
        s.apply_batch(&events).unwrap();
        let post = s.snapshot();
        // The pre-batch snapshot still answers pre-batch for every key of
        // the window; the post-batch snapshot answers post-batch for all.
        for i in 0..16u32 {
            let k: Key = format!("{}.{}.9.9", 13, i).parse().unwrap();
            assert_eq!(pre.lookup(k), None, "pre-batch snapshot torn at {i}");
            assert_eq!(
                post.lookup(k),
                Some(NextHop::new(100 + i)),
                "post-batch snapshot incomplete at {i}"
            );
        }
        assert_eq!(post.generation, pre.generation + 1);
    }

    #[test]
    fn snapshot_is_immutable_while_engine_moves_on() {
        let s = shared();
        let snap = s.snapshot();
        for i in 0..50u32 {
            let p = Prefix::new(AddressFamily::V4, 0x0C00 + u128::from(i), 16).unwrap();
            s.announce(p, NextHop::new(i)).unwrap();
        }
        // The held snapshot still answers from generation 0.
        assert_eq!(snap.generation(), 0);
        assert_eq!(snap.len(), 1);
        let probe = Key::from_raw(AddressFamily::V4, 0x0C00_0000);
        assert_eq!(snap.lookup(probe), None);
        assert_eq!(s.lookup(probe), Some(NextHop::new(0)));
        assert_eq!(s.snapshot().generation(), 50);
    }

    #[test]
    fn batch_lookup_matches_scalar_on_shared_handle() {
        let s = shared();
        let keys: Vec<Key> = (0..300u128)
            .map(|i| Key::from_raw(AddressFamily::V4, 0x0A00_0000 | (i * 7919)))
            .collect();
        let mut out = vec![None; keys.len()];
        s.lookup_batch(&keys, &mut out);
        for (k, o) in keys.iter().zip(&out) {
            assert_eq!(*o, s.lookup(*k));
        }
    }

    #[test]
    fn send_sync_bounds() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedChisel>();
        assert_send_sync::<EngineSnapshot>();
        assert_send_sync::<CachedReader>();
    }

    #[test]
    fn cached_reader_agrees_across_updates() {
        let s = shared();
        let mut r = s.reader_with_capacity(256);
        let probe = Key::from_raw(AddressFamily::V4, 0x0B00_0001);
        assert_eq!(r.lookup(probe), None);
        s.announce("11.0.0.0/8".parse().unwrap(), NextHop::new(4))
            .unwrap();
        // The cached miss is stale now; the version stamp must force a
        // revalidation against the new snapshot.
        assert_eq!(r.lookup(probe), Some(NextHop::new(4)));
        s.withdraw("11.0.0.0/8".parse().unwrap()).unwrap();
        assert_eq!(r.lookup(probe), None);
        assert_eq!(r.cache().hits(), 0);
    }

    #[test]
    fn cached_reader_hits_on_stable_snapshot() {
        let s = shared();
        let mut r = s.reader();
        let key = Key::from_raw(AddressFamily::V4, 0x0A01_0203);
        for _ in 0..10 {
            assert_eq!(r.lookup(key), Some(NextHop::new(1)));
        }
        assert_eq!(r.cache().misses(), 1);
        assert_eq!(r.cache().hits(), 9);
    }

    #[test]
    fn cached_reader_batch_matches_uncached() {
        let s = shared();
        let mut r = s.reader_with_capacity(64);
        let keys: Vec<Key> = (0..400u128)
            .map(|i| Key::from_raw(AddressFamily::V4, 0x0A00_0000 | (i * 131)))
            .collect();
        let mut cached = vec![None; keys.len()];
        let mut plain = vec![None; keys.len()];
        // Twice: the second pass exercises the hit path of every lane.
        for _ in 0..2 {
            r.lookup_batch(&keys, &mut cached);
            s.lookup_batch(&keys, &mut plain);
            assert_eq!(cached, plain);
        }
        assert!(r.cache().hits() > 0);
    }

    #[test]
    fn pinned_batch_reports_the_answering_generation() {
        let s = shared();
        let mut r = s.reader_with_capacity(64);
        let keys: Vec<Key> = (0..32u128)
            .map(|i| Key::from_raw(AddressFamily::V4, 0x0A00_0000 | i))
            .collect();
        let mut out = vec![None; keys.len()];
        assert_eq!(r.lookup_batch_pinned(&keys, &mut out), 0);
        s.announce("11.0.0.0/8".parse().unwrap(), NextHop::new(9))
            .unwrap();
        assert_eq!(r.lookup_batch_pinned(&keys, &mut out), 1);
        let mut trace = crate::LookupTrace::default();
        let mut traced_out = vec![None; keys.len()];
        assert_eq!(r.lookup_batch_traced(&keys, &mut traced_out, &mut trace), 1);
        assert_eq!(traced_out, out);
        assert_eq!(
            trace.cache_hits + trace.cache_misses,
            keys.len(),
            "every lane accounted"
        );
    }

    #[test]
    fn cached_readers_on_many_threads_interleaved_with_updates() {
        let s = shared();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let h = s.clone();
                std::thread::spawn(move || {
                    let mut r = h.reader_with_capacity(512);
                    for i in 0..10_000u128 {
                        let key = Key::from_raw(AddressFamily::V4, 0x0A00_0000 | (i & 0x3FF));
                        // The /8 is never withdrawn, so a cached reader
                        // must always resolve it (to *some* hop).
                        assert!(r.lookup(key).is_some());
                    }
                    (r.cache().hits(), r.cache().misses())
                })
            })
            .collect();
        for i in 0..200u32 {
            let p = Prefix::new(AddressFamily::V4, 0x0B00 + u128::from(i), 16).unwrap();
            s.announce(p, NextHop::new(i)).unwrap();
        }
        for t in readers {
            let (hits, misses) = t.join().unwrap();
            assert_eq!(hits + misses, 10_000);
        }
    }
}
