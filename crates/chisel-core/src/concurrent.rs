//! A shared Chisel engine for the line-card split the paper describes
//! (Section 4.4): the software shadow applies updates on the network
//! processor while the forwarding path keeps serving lookups.
//!
//! [`SharedChisel`] wraps the engine in a read-write lock: lookups take
//! shared access (many in parallel), updates take exclusive access for
//! the short in-place mutation — the software analogue of "the modified
//! portions of the data structure are transferred to the hardware
//! engine".

use std::sync::Arc;

use chisel_prefix::{Key, NextHop, Prefix, RoutingTable};
use parking_lot::RwLock;

use crate::{ChiselConfig, ChiselError, ChiselLpm, UpdateKind, UpdateStats};

/// A thread-safe, cloneable handle to a Chisel engine.
///
/// ```
/// use chisel_core::{SharedChisel, ChiselConfig};
/// use chisel_prefix::{RoutingTable, NextHop};
///
/// # fn main() -> Result<(), chisel_core::ChiselError> {
/// let mut table = RoutingTable::new_v4();
/// table.insert("10.0.0.0/8".parse().unwrap(), NextHop::new(1));
/// let shared = SharedChisel::build(&table, ChiselConfig::ipv4())?;
///
/// let handle = shared.clone();
/// let t = std::thread::spawn(move || handle.lookup("10.1.1.1".parse().unwrap()));
/// shared.announce("11.0.0.0/8".parse().unwrap(), NextHop::new(2))?;
/// assert_eq!(t.join().unwrap(), Some(NextHop::new(1)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SharedChisel {
    inner: Arc<RwLock<ChiselLpm>>,
}

impl SharedChisel {
    /// Builds a shared engine over a routing table.
    ///
    /// # Errors
    ///
    /// Propagates [`ChiselLpm::build`] errors.
    pub fn build(table: &RoutingTable, config: ChiselConfig) -> Result<Self, ChiselError> {
        Ok(SharedChisel {
            inner: Arc::new(RwLock::new(ChiselLpm::build(table, config)?)),
        })
    }

    /// Wraps an existing engine.
    pub fn from_engine(engine: ChiselLpm) -> Self {
        SharedChisel {
            inner: Arc::new(RwLock::new(engine)),
        }
    }

    /// Longest-prefix-match lookup under a shared lock.
    pub fn lookup(&self, key: Key) -> Option<NextHop> {
        self.inner.read().lookup(key)
    }

    /// Applies an announce under an exclusive lock.
    ///
    /// # Errors
    ///
    /// Propagates [`ChiselLpm::announce`] errors.
    pub fn announce(&self, prefix: Prefix, next_hop: NextHop) -> Result<UpdateKind, ChiselError> {
        self.inner.write().announce(prefix, next_hop)
    }

    /// Applies a withdraw under an exclusive lock.
    ///
    /// # Errors
    ///
    /// Propagates [`ChiselLpm::withdraw`] errors.
    pub fn withdraw(&self, prefix: Prefix) -> Result<UpdateKind, ChiselError> {
        self.inner.write().withdraw(prefix)
    }

    /// Number of routable prefixes.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the engine holds no routes.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Snapshot of the update statistics.
    pub fn update_stats(&self) -> UpdateStats {
        self.inner.read().update_stats()
    }

    /// Runs a closure with shared access to the engine (batched lookups
    /// without per-call lock traffic).
    pub fn with_engine<T>(&self, f: impl FnOnce(&ChiselLpm) -> T) -> T {
        f(&self.inner.read())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chisel_prefix::AddressFamily;

    fn shared() -> SharedChisel {
        let mut t = RoutingTable::new_v4();
        t.insert("10.0.0.0/8".parse().unwrap(), NextHop::new(1));
        SharedChisel::build(&t, ChiselConfig::ipv4()).unwrap()
    }

    #[test]
    fn lookups_from_many_threads() {
        let s = shared();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let h = s.clone();
                std::thread::spawn(move || {
                    for i in 0..5_000u128 {
                        let key = Key::from_raw(AddressFamily::V4, 0x0A00_0000 | (i & 0xFFFF));
                        assert_eq!(h.lookup(key), Some(NextHop::new(1)));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn updates_interleave_with_lookups() {
        let s = shared();
        let reader = {
            let h = s.clone();
            std::thread::spawn(move || {
                let mut hits = 0usize;
                for i in 0..20_000u128 {
                    let key = Key::from_raw(AddressFamily::V4, 0x0A00_0000 | (i & 0xFFFF));
                    if h.lookup(key).is_some() {
                        hits += 1;
                    }
                }
                hits
            })
        };
        for i in 0..500u32 {
            let p = chisel_prefix::Prefix::new(AddressFamily::V4, 0x0B00 + i as u128, 16).unwrap();
            s.announce(p, NextHop::new(i)).unwrap();
        }
        // Readers always saw a consistent engine (the /8 never left).
        assert_eq!(reader.join().unwrap(), 20_000);
        assert_eq!(s.len(), 501);
    }

    #[test]
    fn with_engine_batches() {
        let s = shared();
        let total = s.with_engine(|e| {
            (0..100u128)
                .filter(|&i| {
                    e.lookup(Key::from_raw(AddressFamily::V4, 0x0A00_0000 | i))
                        .is_some()
                })
                .count()
        });
        assert_eq!(total, 100);
    }

    #[test]
    fn send_sync_bounds() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedChisel>();
    }
}
