//! Durable control plane: write-ahead update journal, atomic
//! checkpoints, and crash recovery.
//!
//! The paper's deployment model keeps the authoritative tables in a
//! software shadow and streams updates into hardware; a process crash
//! must therefore never lose the shadow. This module adds the standard
//! redo-log durability story on top of [`SharedChisel`]:
//!
//! - **Journal** (`*.journal`): every *accepted* update window is
//!   appended as one framed record reusing the v2 image discipline — a
//!   file magic + version header, then per record a little-endian `u64`
//!   body length, a `u32` FNV-1a-32 checksum of the body, and the body
//!   itself (a strictly monotonic generation stamp plus the window's
//!   events). [`read_journal`] truncates a torn tail (an incomplete
//!   final frame, the signature of a crash mid-append) and rejects
//!   every other corruption with a typed [`JournalError`] — never a
//!   panic, never a silently wrong record.
//! - **Checkpoint** (`*.ckpt`): a point-in-time snapshot — generation
//!   stamp, the full route set, and the [`HardwareImage::to_bytes`]
//!   payload — written to a temp file, fsynced, then atomically
//!   renamed over the previous checkpoint. A crash mid-checkpoint
//!   leaves the old checkpoint intact.
//! - **Recovery** ([`recover`]): load the newest valid checkpoint,
//!   rebuild the engine from its route set, cross-check the rebuild
//!   against the checkpointed image's own answers, then replay the
//!   journal tail through [`SharedChisel::apply_batch`] — one record,
//!   one generation — landing at exactly the last durable pre-crash
//!   generation (enforced: every replayed record's stamp must be the
//!   generation it republishes).
//!
//! [`DurableControl`] packages the write side: apply-then-append (an
//! update is acknowledged only after its journal append returns),
//! periodic checkpoints every N accepted events, and journal rotation
//! after each successful checkpoint so the tail stays short. The
//! faultpoint sites [`JOURNAL_SHORT_WRITE`](crate::faultpoint::JOURNAL_SHORT_WRITE)
//! and [`CHECKPOINT_FSYNC_FAIL`](crate::faultpoint::CHECKPOINT_FSYNC_FAIL)
//! cut both paths mid-flight under `--cfg faultpoint`; the
//! crash-injection harness (`tests/recovery.rs`) kills at those sites
//! and proves recovery is answer-identical to an oracle driven to the
//! recovered generation.

use std::fmt;
use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use chisel_prefix::{AddressFamily, Key, NextHop, Prefix, RoutingTable};

use crate::batch::{BatchReport, RouteUpdate};
use crate::concurrent::EngineSnapshot;
use crate::image::{fnv1a32, HardwareImage, ImageError};
use crate::{faultpoint, ChiselConfig, ChiselError, ChiselLpm, SharedChisel, UpdateKind};

/// Magic bytes opening every journal file.
const JOURNAL_MAGIC: [u8; 4] = *b"CHSJ";

/// Magic bytes opening every checkpoint file.
const CHECKPOINT_MAGIC: [u8; 4] = *b"CHSK";

/// Current journal wire-format version.
pub const JOURNAL_VERSION: u16 = 1;

/// Current checkpoint wire-format version.
pub const CHECKPOINT_VERSION: u16 = 1;

/// Journal file header: magic (4) + version (2) + family tag (1).
const JOURNAL_HEADER_LEN: usize = 7;

/// Record frame prelude: body length (8) + FNV-1a-32 checksum (4).
const FRAME_PRELUDE_LEN: usize = 12;

/// Why a journal or checkpoint operation failed. Every parse-side
/// variant is a *rejection*, never a panic: both files are treated as
/// untrusted bytes off a crashed process's disk.
#[derive(Debug)]
#[non_exhaustive]
pub enum JournalError {
    /// An I/O operation failed (`what` names the operation).
    Io {
        /// Operation being attempted.
        what: &'static str,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The stream ended before the named field could be read (used for
    /// *complete* structures that must be whole, e.g. a checkpoint; an
    /// incomplete journal *tail* is truncated, not an error).
    Truncated {
        /// Field being decoded when the bytes ran out.
        what: &'static str,
    },
    /// The file does not open with the expected magic.
    BadMagic {
        /// Which file kind was being opened.
        what: &'static str,
    },
    /// The file declares a format version this reader does not speak.
    UnsupportedVersion {
        /// The declared version.
        version: u16,
    },
    /// A record or section body does not hash to its stored checksum.
    ChecksumMismatch {
        /// Byte offset of the offending frame.
        offset: u64,
    },
    /// A structural invariant failed while decoding (`what` names it).
    Malformed {
        /// The violated invariant.
        what: &'static str,
    },
    /// A record's generation stamp does not strictly increase over its
    /// predecessor's.
    NonMonotonic {
        /// The preceding record's generation.
        prev: u64,
        /// The offending record's generation.
        got: u64,
    },
    /// The journal tail does not connect to the checkpoint: the next
    /// record to replay must republish exactly `expected`.
    GenerationGap {
        /// Generation the replay engine would publish next.
        expected: u64,
        /// The record's actual stamp.
        got: u64,
    },
    /// A journaled record was rejected on replay — the journal only
    /// holds events that were accepted pre-crash, so this means the
    /// recovered engine diverged from the crashed one.
    ReplayRejected {
        /// Generation of the rejecting record.
        generation: u64,
        /// How many of its events were rejected.
        rejected: usize,
    },
    /// The engine rebuilt from the checkpoint's route set answers a
    /// probe differently from the checkpointed hardware image.
    CheckpointDiverged {
        /// The disagreeing probe key.
        key: Key,
    },
    /// The checkpoint (or journal) was written for a different address
    /// family than the caller expects.
    FamilyMismatch {
        /// Family recorded in the file.
        stored: AddressFamily,
        /// Family the caller supplied.
        expected: AddressFamily,
    },
    /// The checkpointed hardware image failed to parse.
    Image(ImageError),
    /// Rebuilding or replaying through the engine failed.
    Engine(ChiselError),
    /// An armed faultpoint cut the operation (test builds only).
    Fault {
        /// The site that fired.
        site: &'static str,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { what, source } => write!(f, "journal i/o during {what}: {source}"),
            JournalError::Truncated { what } => write!(f, "stream truncated reading {what}"),
            JournalError::BadMagic { what } => write!(f, "{what} does not start with its magic"),
            JournalError::UnsupportedVersion { version } => {
                write!(f, "unsupported format version {version}")
            }
            JournalError::ChecksumMismatch { offset } => {
                write!(f, "record checksum mismatch at byte offset {offset}")
            }
            JournalError::Malformed { what } => write!(f, "malformed {what}"),
            JournalError::NonMonotonic { prev, got } => {
                write!(f, "generation stamp {got} does not increase over {prev}")
            }
            JournalError::GenerationGap { expected, got } => {
                write!(
                    f,
                    "journal tail does not connect: expected generation {expected}, found {got}"
                )
            }
            JournalError::ReplayRejected {
                generation,
                rejected,
            } => write!(
                f,
                "{rejected} journaled event(s) rejected replaying generation {generation}"
            ),
            JournalError::CheckpointDiverged { key } => write!(
                f,
                "rebuilt engine disagrees with the checkpointed image on key {key}"
            ),
            JournalError::FamilyMismatch { stored, expected } => {
                write!(
                    f,
                    "address family mismatch: file has {stored:?}, expected {expected:?}"
                )
            }
            JournalError::Image(e) => write!(f, "checkpointed image rejected: {e}"),
            JournalError::Engine(e) => write!(f, "engine error during recovery: {e}"),
            JournalError::Fault { site } => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io { source, .. } => Some(source),
            JournalError::Image(e) => Some(e),
            JournalError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

fn io_err(what: &'static str) -> impl FnOnce(std::io::Error) -> JournalError {
    move |source| JournalError::Io { what, source }
}

fn family_tag(family: AddressFamily) -> u8 {
    match family {
        AddressFamily::V4 => 4,
        AddressFamily::V6 => 6,
    }
}

fn family_of_tag(tag: u8, what: &'static str) -> Result<AddressFamily, JournalError> {
    match tag {
        4 => Ok(AddressFamily::V4),
        6 => Ok(AddressFamily::V6),
        _ => Err(JournalError::Malformed { what }),
    }
}

/// One journaled record: the generation its window published and the
/// accepted events of that window, in application order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Generation the window published (strictly increasing per record).
    pub generation: u64,
    /// The window's accepted events. May be empty: a window whose every
    /// event was rejected still published a generation.
    pub events: Vec<RouteUpdate>,
}

/// The result of scanning a journal: every intact record plus how much
/// of a torn tail was discarded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalScan {
    /// Address family the journal was opened for.
    pub family: AddressFamily,
    /// Every intact record, in append order.
    pub records: Vec<JournalRecord>,
    /// Byte length of the valid prefix (header + intact frames).
    pub valid_len: u64,
    /// Bytes of torn tail past `valid_len` (0 after a clean shutdown).
    pub truncated_bytes: u64,
}

fn encode_event(out: &mut Vec<u8>, ev: &RouteUpdate) {
    match *ev {
        RouteUpdate::Announce(p, nh) => {
            out.push(0);
            out.push(p.len());
            out.extend(p.bits().to_le_bytes());
            out.extend(nh.id().to_le_bytes());
        }
        RouteUpdate::Withdraw(p) => {
            out.push(1);
            out.push(p.len());
            out.extend(p.bits().to_le_bytes());
        }
    }
}

/// Bounds-checked little-endian cursor over untrusted journal or
/// checkpoint bytes (the image loader's `Reader`, retyped for
/// [`JournalError`]).
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], JournalError> {
        if self.remaining() < n {
            return Err(JournalError::Truncated { what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, JournalError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, JournalError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, JournalError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, JournalError> {
        let b = self.take(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn u128(&mut self, what: &'static str) -> Result<u128, JournalError> {
        let b = self.take(16, what)?;
        let mut a = [0u8; 16];
        a.copy_from_slice(b);
        Ok(u128::from_le_bytes(a))
    }

    /// One `u64` length + `u32` checksum framed section, checksum
    /// verified before the body is handed out.
    fn section(&mut self, what: &'static str) -> Result<&'a [u8], JournalError> {
        let offset = self.pos as u64;
        let len = self.u64(what)?;
        let sum = self.u32(what)?;
        if (self.remaining() as u64) < len {
            return Err(JournalError::Truncated { what });
        }
        let body = self.take(len as usize, what)?;
        if fnv1a32(body) != sum {
            return Err(JournalError::ChecksumMismatch { offset });
        }
        Ok(body)
    }

    fn finish(&self, what: &'static str) -> Result<(), JournalError> {
        if self.remaining() != 0 {
            return Err(JournalError::Malformed { what });
        }
        Ok(())
    }
}

fn decode_event(c: &mut Cursor<'_>, family: AddressFamily) -> Result<RouteUpdate, JournalError> {
    let tag = c.u8("event tag")?;
    let len = c.u8("prefix length")?;
    let bits = c.u128("prefix bits")?;
    let prefix =
        Prefix::new(family, bits, len).map_err(|_| JournalError::Malformed { what: "prefix" })?;
    match tag {
        0 => {
            let nh = c.u32("next hop")?;
            Ok(RouteUpdate::Announce(prefix, NextHop::new(nh)))
        }
        1 => Ok(RouteUpdate::Withdraw(prefix)),
        _ => Err(JournalError::Malformed { what: "event tag" }),
    }
}

fn decode_record_body(body: &[u8], family: AddressFamily) -> Result<JournalRecord, JournalError> {
    let mut c = Cursor::new(body);
    let generation = c.u64("generation stamp")?;
    let count = c.u32("event count")? as usize;
    // The smallest event (withdraw) is 18 bytes: reject absurd counts
    // before reserving anything.
    if count > c.remaining() / 18 + 1 {
        return Err(JournalError::Malformed {
            what: "event count",
        });
    }
    let mut events = Vec::with_capacity(count);
    for _ in 0..count {
        events.push(decode_event(&mut c, family)?);
    }
    c.finish("record body")?;
    Ok(JournalRecord { generation, events })
}

/// Scans in-memory journal bytes.
///
/// An *incomplete* final frame — the prelude or the declared body
/// running past end-of-file, a crash mid-append — is cleanly truncated:
/// the scan succeeds with the intact prefix and reports the discarded
/// byte count. A header shorter than its fixed size is treated the same
/// way (a crash mid-create). Everything else — wrong magic, unknown
/// version, a checksum mismatch, an undecodable body, a non-monotonic
/// generation stamp — is a typed error.
///
/// # Errors
///
/// Returns a [`JournalError`] describing the first rejected structure.
pub fn scan_journal(bytes: &[u8]) -> Result<JournalScan, JournalError> {
    if bytes.len() < JOURNAL_HEADER_LEN {
        // Torn header: the journal died mid-create. Nothing is
        // recoverable, but nothing is corrupt either.
        return Ok(JournalScan {
            family: AddressFamily::V4,
            records: Vec::new(),
            valid_len: 0,
            truncated_bytes: bytes.len() as u64,
        });
    }
    if bytes[..4] != JOURNAL_MAGIC {
        return Err(JournalError::BadMagic { what: "journal" });
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != JOURNAL_VERSION {
        return Err(JournalError::UnsupportedVersion { version });
    }
    let family = family_of_tag(bytes[6], "journal family")?;
    let mut records = Vec::new();
    let mut pos = JOURNAL_HEADER_LEN;
    let mut prev_generation: Option<u64> = None;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            break;
        }
        if remaining < FRAME_PRELUDE_LEN {
            // Torn tail: the frame prelude itself is incomplete.
            break;
        }
        let mut prelude = Cursor::new(&bytes[pos..pos + FRAME_PRELUDE_LEN]);
        let len = prelude.u64("frame length")? as usize;
        let sum = prelude.u32("frame checksum")?;
        if remaining - FRAME_PRELUDE_LEN < len {
            // Torn tail: the body runs past end-of-file.
            break;
        }
        let body = &bytes[pos + FRAME_PRELUDE_LEN..pos + FRAME_PRELUDE_LEN + len];
        if fnv1a32(body) != sum {
            return Err(JournalError::ChecksumMismatch { offset: pos as u64 });
        }
        let record = decode_record_body(body, family)?;
        if let Some(prev) = prev_generation {
            if record.generation <= prev {
                return Err(JournalError::NonMonotonic {
                    prev,
                    got: record.generation,
                });
            }
        }
        prev_generation = Some(record.generation);
        records.push(record);
        pos += FRAME_PRELUDE_LEN + len;
    }
    Ok(JournalScan {
        family,
        records,
        valid_len: pos as u64,
        truncated_bytes: (bytes.len() - pos) as u64,
    })
}

/// Reads and scans a journal file (see [`scan_journal`]). A missing
/// file is an empty journal, not an error — recovery after a crash
/// between checkpoint rename and journal rotation must succeed.
///
/// # Errors
///
/// Returns a [`JournalError`] on unreadable files or rejected records.
pub fn read_journal(path: &Path, family: AddressFamily) -> Result<JournalScan, JournalError> {
    if !path.exists() {
        return Ok(JournalScan {
            family,
            records: Vec::new(),
            valid_len: 0,
            truncated_bytes: 0,
        });
    }
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(io_err("journal read"))?;
    let scan = scan_journal(&bytes)?;
    if !scan.records.is_empty() && scan.family != family {
        return Err(JournalError::FamilyMismatch {
            stored: scan.family,
            expected: family,
        });
    }
    Ok(scan)
}

/// The append side of the write-ahead journal.
///
/// One writer per journal file; records are framed exactly as
/// [`scan_journal`] expects. With `fsync` enabled (the default) every
/// append is `fdatasync`ed before it is acknowledged, which is what
/// makes the acknowledgement a durability promise.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    fsync: bool,
    records: u64,
}

impl JournalWriter {
    /// Creates (or truncates) the journal at `path` and writes its
    /// header.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] on filesystem failure.
    pub fn create(path: &Path, family: AddressFamily, fsync: bool) -> Result<Self, JournalError> {
        let mut file = File::create(path).map_err(io_err("journal create"))?;
        let mut header = Vec::with_capacity(JOURNAL_HEADER_LEN);
        header.extend(JOURNAL_MAGIC);
        header.extend(JOURNAL_VERSION.to_le_bytes());
        header.push(family_tag(family));
        file.write_all(&header).map_err(io_err("journal header"))?;
        if fsync {
            file.sync_data().map_err(io_err("journal header sync"))?;
        }
        Ok(JournalWriter {
            file,
            fsync,
            records: 0,
        })
    }

    /// Appends one record: the window's published generation stamp and
    /// its accepted events. The append is acknowledged (returns `Ok`)
    /// only after the bytes are written — and, with `fsync`, synced.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] on filesystem failure, or
    /// [`JournalError::Fault`] when the `journal-short-write` faultpoint
    /// cuts the frame mid-write (test builds only) — in which case a
    /// torn tail is deliberately left on disk, exactly as a crash
    /// between `write` and acknowledgement would.
    pub fn append(&mut self, generation: u64, events: &[RouteUpdate]) -> Result<(), JournalError> {
        let mut body = Vec::with_capacity(16 + events.len() * 23);
        body.extend(generation.to_le_bytes());
        body.extend((events.len() as u32).to_le_bytes());
        for ev in events {
            encode_event(&mut body, ev);
        }
        let mut frame = Vec::with_capacity(FRAME_PRELUDE_LEN + body.len());
        frame.extend((body.len() as u64).to_le_bytes());
        frame.extend(fnv1a32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        if faultpoint::fire(faultpoint::JOURNAL_SHORT_WRITE) {
            // Crash model: the process dies after half the frame
            // reached the file. Leave the torn tail behind.
            let half = frame.len() / 2;
            let _ = self.file.write_all(&frame[..half]);
            let _ = self.file.sync_data();
            return Err(JournalError::Fault {
                site: faultpoint::JOURNAL_SHORT_WRITE,
            });
        }
        self.file
            .write_all(&frame)
            .map_err(io_err("journal append"))?;
        if self.fsync {
            self.file
                .sync_data()
                .map_err(io_err("journal append sync"))?;
        }
        self.records += 1;
        Ok(())
    }

    /// Records appended through this writer since creation.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Forces all appended records to stable storage.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] on filesystem failure.
    pub fn sync(&self) -> Result<(), JournalError> {
        self.file.sync_data().map_err(io_err("journal sync"))
    }
}

/// A parsed checkpoint: the generation it froze, the full route set,
/// and the hardware image exported at that generation.
#[derive(Debug)]
pub struct Checkpoint {
    /// Generation the checkpointed engine had published.
    pub generation: u64,
    /// Address family of the checkpointed engine.
    pub family: AddressFamily,
    /// Every route live at `generation` (including any default route).
    pub routes: Vec<(Prefix, NextHop)>,
    /// The hardware image exported at `generation` — recovery rebuilds
    /// the engine from `routes` and cross-checks its answers against
    /// this image.
    pub image: HardwareImage,
}

fn push_section(out: &mut Vec<u8>, body: &[u8]) {
    out.extend((body.len() as u64).to_le_bytes());
    out.extend(fnv1a32(body).to_le_bytes());
    out.extend_from_slice(body);
}

/// Serializes a checkpoint of `snapshot` and writes it to `path` via a
/// temp file, fsync, and an atomic rename: a crash at any instant
/// leaves either the previous checkpoint or the new one, never a torn
/// mix.
///
/// # Errors
///
/// Returns [`JournalError::Io`] on filesystem failure, or
/// [`JournalError::Fault`] when the `checkpoint-fsync-fail` faultpoint
/// fires (test builds only) — the temp file is abandoned *before* the
/// rename, so the previous checkpoint stays intact.
pub fn write_checkpoint(path: &Path, snapshot: &EngineSnapshot) -> Result<(), JournalError> {
    let engine = snapshot.engine();
    let family = engine.config().family;
    let routes: Vec<(Prefix, NextHop)> = engine
        .iter_routes()
        .map(|e| (e.prefix, e.next_hop))
        .collect();
    let image_bytes = engine.export_image().to_bytes();

    let mut out = Vec::with_capacity(image_bytes.len() + routes.len() * 21 + 64);
    out.extend(CHECKPOINT_MAGIC);
    out.extend(CHECKPOINT_VERSION.to_le_bytes());
    let mut header = Vec::with_capacity(17);
    header.extend(snapshot.generation().to_le_bytes());
    header.push(family_tag(family));
    header.extend((routes.len() as u64).to_le_bytes());
    push_section(&mut out, &header);
    let mut route_body = Vec::with_capacity(routes.len() * 21);
    for (p, nh) in &routes {
        route_body.push(p.len());
        route_body.extend(p.bits().to_le_bytes());
        route_body.extend(nh.id().to_le_bytes());
    }
    push_section(&mut out, &route_body);
    push_section(&mut out, &image_bytes);

    let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let mut file = File::create(&tmp).map_err(io_err("checkpoint create"))?;
    file.write_all(&out).map_err(io_err("checkpoint write"))?;
    if faultpoint::fire(faultpoint::CHECKPOINT_FSYNC_FAIL) {
        // Crash model: the process dies before the temp file is synced
        // and renamed. The previous checkpoint is untouched.
        return Err(JournalError::Fault {
            site: faultpoint::CHECKPOINT_FSYNC_FAIL,
        });
    }
    file.sync_data().map_err(io_err("checkpoint sync"))?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(io_err("checkpoint rename"))?;
    // Best-effort directory sync so the rename itself is durable.
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Reads and fully validates the checkpoint at `path`: magic, version,
/// every section checksum, the route encoding, and the embedded image
/// (which goes through the image loader's own corruption rejection).
///
/// # Errors
///
/// Returns a [`JournalError`] naming the first rejected structure.
pub fn read_checkpoint(path: &Path) -> Result<Checkpoint, JournalError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(io_err("checkpoint read"))?;
    let mut c = Cursor::new(&bytes);
    if c.take(4, "checkpoint magic")? != CHECKPOINT_MAGIC {
        return Err(JournalError::BadMagic { what: "checkpoint" });
    }
    let version = c.u16("checkpoint version")?;
    if version != CHECKPOINT_VERSION {
        return Err(JournalError::UnsupportedVersion { version });
    }
    let header = c.section("checkpoint header")?;
    let mut h = Cursor::new(header);
    let generation = h.u64("checkpoint generation")?;
    let family = family_of_tag(h.u8("checkpoint family")?, "checkpoint family")?;
    let route_count = h.u64("route count")? as usize;
    h.finish("checkpoint header")?;
    let route_body = c.section("checkpoint routes")?;
    if route_body.len() != route_count * 21 {
        return Err(JournalError::Malformed {
            what: "route section length",
        });
    }
    let mut r = Cursor::new(route_body);
    let mut routes = Vec::with_capacity(route_count);
    for _ in 0..route_count {
        let len = r.u8("route length")?;
        let bits = r.u128("route bits")?;
        let nh = r.u32("route next hop")?;
        let prefix = Prefix::new(family, bits, len).map_err(|_| JournalError::Malformed {
            what: "route prefix",
        })?;
        routes.push((prefix, NextHop::new(nh)));
    }
    r.finish("checkpoint routes")?;
    let image_bytes = c.section("checkpoint image")?;
    c.finish("checkpoint")?;
    let image = HardwareImage::from_bytes(image_bytes).map_err(JournalError::Image)?;
    Ok(Checkpoint {
        generation,
        family,
        routes,
        image,
    })
}

/// What [`recover`] did, for reporting and for the crash-injection
/// harness's exactness assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Generation of the checkpoint recovery started from.
    pub checkpoint_generation: u64,
    /// Generation after the journal tail was replayed — the exact last
    /// durable pre-crash generation.
    pub final_generation: u64,
    /// Routes rebuilt from the checkpoint.
    pub checkpoint_routes: usize,
    /// Journal records replayed (each republished one generation).
    pub replayed_records: usize,
    /// Events inside the replayed records.
    pub replayed_events: usize,
    /// Records at or below the checkpoint generation, skipped (a crash
    /// between checkpoint rename and journal rotation leaves them).
    pub skipped_records: usize,
    /// Bytes of torn journal tail discarded.
    pub truncated_bytes: u64,
}

/// A recovered control plane: the shared engine republished at the
/// pre-crash generation, plus what it took to get there.
#[derive(Debug)]
pub struct Recovered {
    /// The recovered engine, at [`RecoveryReport::final_generation`].
    pub shared: SharedChisel,
    /// Recovery accounting.
    pub report: RecoveryReport,
}

/// Recovers a control plane from `checkpoint` + `journal`, deriving the
/// engine configuration (the paper's design point) from the checkpoint's
/// address family. See [`recover_with_config`].
///
/// # Errors
///
/// Propagates every [`recover_with_config`] error.
pub fn recover(checkpoint: &Path, journal: &Path) -> Result<Recovered, JournalError> {
    let ckpt = read_checkpoint(checkpoint)?;
    let config = match ckpt.family {
        AddressFamily::V4 => ChiselConfig::ipv4(),
        AddressFamily::V6 => ChiselConfig::ipv6(),
    };
    recover_with_config(ckpt, journal, config)
}

/// The recovery path: rebuild an engine from the checkpoint's route
/// set, cross-check it against the checkpointed image's answers, wrap
/// it at the checkpoint generation, then replay the journal tail one
/// record per generation.
///
/// The landing generation is *provably* the last durable pre-crash
/// generation: every replayed record must carry the exact stamp its
/// replay republishes ([`JournalError::GenerationGap`] otherwise), the
/// stamps are strictly monotonic by journal contract, and a record the
/// crashed process never finished appending was truncated by the
/// scanner — so the final generation equals the last intact record's
/// stamp (or the checkpoint's, for an empty tail).
///
/// # Errors
///
/// Returns a typed [`JournalError`] for an invalid checkpoint or
/// journal, a family/config mismatch, a generation gap, a rejected
/// replay, or an answer divergence between the rebuilt engine and the
/// checkpointed image.
pub fn recover_with_config(
    checkpoint: Checkpoint,
    journal: &Path,
    config: ChiselConfig,
) -> Result<Recovered, JournalError> {
    if config.family != checkpoint.family {
        return Err(JournalError::FamilyMismatch {
            stored: checkpoint.family,
            expected: config.family,
        });
    }
    let mut table = match checkpoint.family {
        AddressFamily::V4 => RoutingTable::new_v4(),
        AddressFamily::V6 => RoutingTable::new_v6(),
    };
    for &(prefix, next_hop) in &checkpoint.routes {
        table.insert(prefix, next_hop);
    }
    let engine = ChiselLpm::build(&table, config).map_err(JournalError::Engine)?;
    // Cross-check: the rebuilt engine must answer exactly as the
    // checkpointed image does — one probe inside every route.
    for &(prefix, _) in &checkpoint.routes {
        let key = prefix.first_key();
        if engine.lookup(key) != checkpoint.image.lookup(key) {
            return Err(JournalError::CheckpointDiverged { key });
        }
    }
    let shared = SharedChisel::from_engine_at(engine, checkpoint.generation);
    let scan = read_journal(journal, checkpoint.family)?;
    let mut report = RecoveryReport {
        checkpoint_generation: checkpoint.generation,
        final_generation: checkpoint.generation,
        checkpoint_routes: checkpoint.routes.len(),
        replayed_records: 0,
        replayed_events: 0,
        skipped_records: 0,
        truncated_bytes: scan.truncated_bytes,
    };
    for record in &scan.records {
        if record.generation <= checkpoint.generation {
            report.skipped_records += 1;
            continue;
        }
        let expected = shared.generation() + 1;
        if record.generation != expected {
            return Err(JournalError::GenerationGap {
                expected,
                got: record.generation,
            });
        }
        let batch: BatchReport = shared
            .apply_batch(&record.events)
            .map_err(JournalError::Engine)?;
        if !batch.rejected_events.is_empty() {
            return Err(JournalError::ReplayRejected {
                generation: record.generation,
                rejected: batch.rejected_events.len(),
            });
        }
        report.replayed_records += 1;
        report.replayed_events += record.events.len();
    }
    report.final_generation = shared.generation();
    Ok(Recovered { shared, report })
}

/// Where the durable control plane keeps its files and how often it
/// checkpoints.
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// Journal file path.
    pub journal: PathBuf,
    /// Checkpoint file path.
    pub checkpoint: PathBuf,
    /// Accepted events between periodic checkpoints; `0` checkpoints
    /// only on [`DurableControl::create`] and explicit
    /// [`DurableControl::checkpoint`] calls.
    pub checkpoint_every: u64,
    /// Whether every journal append is fsynced before it is
    /// acknowledged (the durability promise; disable only in tests).
    pub fsync: bool,
}

impl DurableOptions {
    /// Options rooted at `journal`, with the checkpoint beside it at
    /// `<journal>.ckpt`, checkpointing every `checkpoint_every` events.
    pub fn at(journal: impl Into<PathBuf>, checkpoint_every: u64) -> Self {
        let journal = journal.into();
        let mut ckpt_name = journal.file_name().unwrap_or_default().to_os_string();
        ckpt_name.push(".ckpt");
        let checkpoint = journal.with_file_name(ckpt_name);
        DurableOptions {
            journal,
            checkpoint,
            checkpoint_every,
            fsync: true,
        }
    }
}

/// Counters of one [`DurableControl`]'s lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurableStats {
    /// Journal records appended (one per accepted update or window).
    pub appended_records: u64,
    /// Events inside those records.
    pub appended_events: u64,
    /// Checkpoints written (including the one at creation).
    pub checkpoints: u64,
}

/// The two failure planes of a durable update.
#[derive(Debug)]
pub enum DurableError {
    /// The engine rejected the update — nothing was published, nothing
    /// journaled; state is unchanged and the caller may continue.
    Engine(ChiselError),
    /// The update published but could not be made durable (or a
    /// checkpoint failed). The caller must treat this as fatal: lookups
    /// already see the update, but a crash would lose it.
    Journal(JournalError),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Engine(e) => write!(f, "{e}"),
            DurableError::Journal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Engine(e) => Some(e),
            DurableError::Journal(e) => Some(e),
        }
    }
}

/// The durable write side of a [`SharedChisel`]: apply-then-append with
/// periodic checkpoint + journal rotation.
///
/// Single-writer: route every update of a control plane through one
/// `DurableControl` (concurrent writers through other handles of the
/// same `SharedChisel` would journal interleaved generations).
///
/// The durability contract is the redo-log one: an update is *durable*
/// once the method returns `Ok` (its record is on disk); an update
/// whose append failed mid-write is published to readers but will be
/// rolled back by recovery — which is why [`DurableError::Journal`]
/// must be treated as fatal.
#[derive(Debug)]
pub struct DurableControl {
    shared: SharedChisel,
    writer: JournalWriter,
    opts: DurableOptions,
    family: AddressFamily,
    durable_generation: u64,
    events_since_checkpoint: u64,
    stats: DurableStats,
}

impl DurableControl {
    /// Wraps `shared`: writes a checkpoint of its current snapshot and
    /// starts a fresh journal. Also the post-[`recover`] re-entry
    /// point — creating a `DurableControl` on a recovered handle
    /// compacts the old journal tail into the new checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError`] if the checkpoint or journal cannot be
    /// written.
    pub fn create(shared: SharedChisel, opts: DurableOptions) -> Result<Self, JournalError> {
        let snapshot = shared.snapshot();
        let family = snapshot.engine().config().family;
        write_checkpoint(&opts.checkpoint, &snapshot)?;
        let writer = JournalWriter::create(&opts.journal, family, opts.fsync)?;
        let durable_generation = snapshot.generation();
        Ok(DurableControl {
            shared,
            writer,
            opts,
            family,
            durable_generation,
            events_since_checkpoint: 0,
            stats: DurableStats {
                checkpoints: 1,
                ..DurableStats::default()
            },
        })
    }

    /// The shared engine handle (read side).
    pub fn shared(&self) -> &SharedChisel {
        &self.shared
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &DurableStats {
        &self.stats
    }

    /// The last generation known durable: covered by the checkpoint or
    /// an acknowledged journal record. Recovery lands exactly here.
    pub fn durable_generation(&self) -> u64 {
        self.durable_generation
    }

    /// Durable announce: publish, then append the record.
    ///
    /// # Errors
    ///
    /// [`DurableError::Engine`] on rejection (state unchanged);
    /// [`DurableError::Journal`] on a durability failure (fatal).
    pub fn announce(
        &mut self,
        prefix: Prefix,
        next_hop: NextHop,
    ) -> Result<UpdateKind, DurableError> {
        let kind = self
            .shared
            .announce(prefix, next_hop)
            .map_err(DurableError::Engine)?;
        self.commit(&[RouteUpdate::Announce(prefix, next_hop)])?;
        Ok(kind)
    }

    /// Durable withdraw: publish, then append the record.
    ///
    /// # Errors
    ///
    /// Same planes as [`DurableControl::announce`].
    pub fn withdraw(&mut self, prefix: Prefix) -> Result<UpdateKind, DurableError> {
        let kind = self.shared.withdraw(prefix).map_err(DurableError::Engine)?;
        self.commit(&[RouteUpdate::Withdraw(prefix)])?;
        Ok(kind)
    }

    /// Durable update window: publish one generation through
    /// [`SharedChisel::apply_batch`], then append the window's
    /// *accepted* events as one record (a torn window can never replay
    /// partially — the record is the atom).
    ///
    /// # Errors
    ///
    /// Same planes as [`DurableControl::announce`]; a window that
    /// published with per-event rejections is `Ok` (inspect the
    /// [`BatchReport`]), matching the non-durable batch path.
    pub fn apply_batch(&mut self, events: &[RouteUpdate]) -> Result<BatchReport, DurableError> {
        let batch = self
            .shared
            .apply_batch(events)
            .map_err(DurableError::Engine)?;
        let accepted: Vec<RouteUpdate> = if batch.rejected_events.is_empty() {
            events.to_vec()
        } else {
            let mut next_rejected = batch.rejected_events.iter().copied().peekable();
            let mut kept = Vec::with_capacity(events.len() - batch.rejected_events.len());
            for (i, ev) in events.iter().enumerate() {
                if next_rejected.peek() == Some(&i) {
                    next_rejected.next();
                } else {
                    kept.push(*ev);
                }
            }
            kept
        };
        self.commit(&accepted)?;
        Ok(batch)
    }

    fn commit(&mut self, accepted: &[RouteUpdate]) -> Result<(), DurableError> {
        let generation = self.shared.generation();
        self.writer
            .append(generation, accepted)
            .map_err(DurableError::Journal)?;
        self.durable_generation = generation;
        self.stats.appended_records += 1;
        self.stats.appended_events += accepted.len() as u64;
        self.events_since_checkpoint += accepted.len() as u64;
        if self.opts.checkpoint_every > 0
            && self.events_since_checkpoint >= self.opts.checkpoint_every
        {
            self.checkpoint().map_err(DurableError::Journal)?;
        }
        Ok(())
    }

    /// Forces a checkpoint of the current snapshot, then rotates the
    /// journal (the tail up to the checkpoint is now redundant). A
    /// failed checkpoint leaves the previous checkpoint *and* the
    /// un-rotated journal intact, so durability never regresses.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError`] if the checkpoint or the fresh journal
    /// cannot be written.
    pub fn checkpoint(&mut self) -> Result<(), JournalError> {
        let snapshot = self.shared.snapshot();
        write_checkpoint(&self.opts.checkpoint, &snapshot)?;
        // Only after the rename landed is the old journal redundant.
        self.writer = JournalWriter::create(&self.opts.journal, self.family, self.opts.fsync)?;
        self.durable_generation = self.durable_generation.max(snapshot.generation());
        self.events_since_checkpoint = 0;
        self.stats.checkpoints += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chisel_prefix::AddressFamily;

    fn tempdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("chisel-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn unique(dir: &Path, name: &str, tag: &str) -> PathBuf {
        dir.join(format!("{tag}-{name}"))
    }

    fn shared() -> SharedChisel {
        let mut t = RoutingTable::new_v4();
        t.insert("10.0.0.0/8".parse().unwrap(), NextHop::new(1));
        for i in 0..16u128 {
            t.insert(
                Prefix::new(AddressFamily::V4, 0x0A00 | i, 16).unwrap(),
                NextHop::new(10 + i as u32),
            );
        }
        SharedChisel::build(&t, ChiselConfig::ipv4()).unwrap()
    }

    fn sample_events() -> Vec<JournalRecord> {
        let p = |s: &str| s.parse::<Prefix>().unwrap();
        vec![
            JournalRecord {
                generation: 1,
                events: vec![RouteUpdate::Announce(p("11.0.0.0/8"), NextHop::new(7))],
            },
            JournalRecord {
                generation: 2,
                events: vec![
                    RouteUpdate::Withdraw(p("11.0.0.0/8")),
                    RouteUpdate::Announce(p("12.34.0.0/16"), NextHop::new(9)),
                ],
            },
            JournalRecord {
                generation: 5,
                events: vec![],
            },
        ]
    }

    fn write_records(path: &Path, records: &[JournalRecord]) {
        let mut w = JournalWriter::create(path, AddressFamily::V4, false).unwrap();
        for r in records {
            w.append(r.generation, &r.events).unwrap();
        }
    }

    #[test]
    fn journal_round_trips() {
        let path = unique(&tempdir(), "roundtrip.journal", "unit");
        let records = sample_events();
        write_records(&path, &records);
        let scan = read_journal(&path, AddressFamily::V4).unwrap();
        assert_eq!(scan.records, records);
        assert_eq!(scan.truncated_bytes, 0);
        assert_eq!(scan.family, AddressFamily::V4);
    }

    #[test]
    fn torn_tail_is_truncated_at_every_cut() {
        let path = unique(&tempdir(), "torn.journal", "unit");
        let records = sample_events();
        write_records(&path, &records);
        let bytes = std::fs::read(&path).unwrap();
        let full = scan_journal(&bytes).unwrap();
        assert_eq!(full.valid_len as usize, bytes.len());
        for cut in 0..bytes.len() {
            let scan = scan_journal(&bytes[..cut]).unwrap_or_else(|e| {
                panic!("cut at {cut} must truncate, not reject: {e}");
            });
            assert!(scan.records.len() <= records.len());
            assert_eq!(scan.records[..], records[..scan.records.len()]);
            assert_eq!(scan.valid_len + scan.truncated_bytes, cut as u64);
        }
    }

    #[test]
    fn corrupt_records_are_typed_rejections() {
        let path = unique(&tempdir(), "corrupt.journal", "unit");
        write_records(&path, &sample_events());
        let bytes = std::fs::read(&path).unwrap();

        // Flip one bit inside the first record's body.
        let mut flipped = bytes.clone();
        flipped[JOURNAL_HEADER_LEN + FRAME_PRELUDE_LEN + 2] ^= 0x40;
        assert!(matches!(
            scan_journal(&flipped),
            Err(JournalError::ChecksumMismatch { .. })
        ));

        // Wrong magic.
        let mut magic = bytes.clone();
        magic[1] = b'X';
        assert!(matches!(
            scan_journal(&magic),
            Err(JournalError::BadMagic { .. })
        ));

        // Unknown version.
        let mut version = bytes.clone();
        version[4] = 0x77;
        assert!(matches!(
            scan_journal(&version),
            Err(JournalError::UnsupportedVersion { version: 0x77 })
        ));

        // Bad family tag.
        let mut family = bytes;
        family[6] = 9;
        assert!(matches!(
            scan_journal(&family),
            Err(JournalError::Malformed { .. })
        ));
    }

    #[test]
    fn non_monotonic_stamps_are_rejected() {
        let path = unique(&tempdir(), "monotonic.journal", "unit");
        let mut w = JournalWriter::create(&path, AddressFamily::V4, false).unwrap();
        w.append(3, &[]).unwrap();
        w.append(3, &[]).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(matches!(
            scan_journal(&bytes),
            Err(JournalError::NonMonotonic { prev: 3, got: 3 })
        ));
    }

    #[test]
    fn missing_journal_is_empty() {
        let scan = read_journal(
            &unique(&tempdir(), "never-created.journal", "unit"),
            AddressFamily::V4,
        )
        .unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.truncated_bytes, 0);
    }

    #[test]
    fn checkpoint_round_trips_and_recovers() {
        let dir = tempdir();
        let ckpt = unique(&dir, "rt.ckpt", "unit");
        let journal = unique(&dir, "rt.journal", "unit");
        let s = shared();
        s.announce("99.0.0.0/8".parse().unwrap(), NextHop::new(42))
            .unwrap();
        write_checkpoint(&ckpt, &s.snapshot()).unwrap();
        let parsed = read_checkpoint(&ckpt).unwrap();
        assert_eq!(parsed.generation, 1);
        assert_eq!(parsed.family, AddressFamily::V4);
        assert_eq!(parsed.routes.len(), s.len());
        let rec = recover(&ckpt, &journal).unwrap();
        assert_eq!(rec.report.final_generation, 1);
        assert_eq!(rec.report.replayed_records, 0);
        assert_eq!(
            rec.shared.lookup("99.1.2.3".parse().unwrap()),
            Some(NextHop::new(42))
        );
        assert_eq!(rec.shared.generation(), 1);
    }

    #[test]
    fn durable_control_journal_and_rotation() {
        let dir = tempdir();
        let journal = unique(&dir, "dc.journal", "unit");
        let opts = DurableOptions {
            fsync: false,
            ..DurableOptions::at(&journal, 4)
        };
        let s = shared();
        let mut dc = DurableControl::create(s.clone(), opts).unwrap();
        assert_eq!(dc.stats().checkpoints, 1);
        for i in 0..6u32 {
            let p = Prefix::new(AddressFamily::V4, 0x1500 | u128::from(i), 16).unwrap();
            dc.announce(p, NextHop::new(200 + i)).unwrap();
        }
        // checkpoint_every = 4: one periodic rotation happened, so the
        // journal holds only the post-rotation tail.
        assert_eq!(dc.stats().checkpoints, 2);
        assert_eq!(dc.durable_generation(), 6);
        let scan = read_journal(&journal, AddressFamily::V4).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[0].generation, 5);

        // Recovery from the rotated pair lands at the exact generation.
        let rec = recover(&DurableOptions::at(&journal, 0).checkpoint, &journal).unwrap();
        assert_eq!(rec.report.final_generation, 6);
        for i in 0..6u32 {
            let k = Key::from_raw(AddressFamily::V4, (0x1500 | u128::from(i)) << 16 | 1);
            assert_eq!(rec.shared.lookup(k), Some(NextHop::new(200 + i)));
        }
    }

    #[test]
    fn gap_in_replay_is_rejected() {
        let dir = tempdir();
        let ckpt = unique(&dir, "gap.ckpt", "unit");
        let journal = unique(&dir, "gap.journal", "unit");
        let s = shared();
        write_checkpoint(&ckpt, &s.snapshot()).unwrap();
        let mut w = JournalWriter::create(&journal, AddressFamily::V4, false).unwrap();
        // Generation 2 cannot replay onto a generation-0 checkpoint.
        w.append(2, &[RouteUpdate::Withdraw("10.0.0.0/8".parse().unwrap())])
            .unwrap();
        assert!(matches!(
            recover(&ckpt, &journal),
            Err(JournalError::GenerationGap {
                expected: 1,
                got: 2
            })
        ));
    }
}
