use std::error::Error;
use std::fmt;

use chisel_bloomier::BloomierError;

/// Errors from building or updating a Chisel engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChiselError {
    /// The underlying Bloomier filter could not be constructed.
    Bloomier(BloomierError),
    /// More keys spilled than the spillover TCAM can hold.
    SpilloverOverflow {
        /// Keys that needed spilling.
        needed: usize,
        /// Configured spillover TCAM capacity.
        capacity: usize,
    },
    /// A prefix length is not covered by the engine's stride plan.
    UnsupportedLength {
        /// The offending prefix length.
        len: u8,
    },
    /// The update or lookup used the wrong address family.
    FamilyMismatch,
    /// A sub-cell ran out of filter-table slots and growth is disabled.
    CapacityExceeded {
        /// Base length of the full sub-cell.
        cell_base: u8,
    },
    /// An internal invariant the update path relies on was violated; the
    /// update was rolled back instead of panicking.
    Internal {
        /// Which invariant broke.
        what: &'static str,
    },
    /// A [`crate::faultpoint`] site fired (fault-injection builds only).
    FaultInjected {
        /// The fault-point site name.
        site: &'static str,
    },
}

impl fmt::Display for ChiselError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChiselError::Bloomier(e) => write!(f, "bloomier construction failed: {e}"),
            ChiselError::SpilloverOverflow { needed, capacity } => {
                write!(
                    f,
                    "spillover TCAM overflow: {needed} keys, capacity {capacity}"
                )
            }
            ChiselError::UnsupportedLength { len } => {
                write!(f, "prefix length {len} not covered by the stride plan")
            }
            ChiselError::FamilyMismatch => write!(f, "address family mismatch"),
            ChiselError::CapacityExceeded { cell_base } => {
                write!(f, "sub-cell at base length {cell_base} is full")
            }
            ChiselError::Internal { what } => {
                write!(f, "internal update invariant violated: {what}")
            }
            ChiselError::FaultInjected { site } => {
                write!(f, "injected fault fired at site `{site}`")
            }
        }
    }
}

impl Error for ChiselError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ChiselError::Bloomier(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<BloomierError> for ChiselError {
    fn from(e: BloomierError) -> Self {
        ChiselError::Bloomier(e)
    }
}
