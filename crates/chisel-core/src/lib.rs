//! The Chisel LPM engine (paper Section 4): Bloomier-filter sub-cells with
//! prefix collapsing, exact false-positive elimination, and incremental
//! updates.
//!
//! The lookup data path per sub-cell is Figure 6 of the paper:
//!
//! ```text
//! key ──collapse──▶ Index Table (k-segment XOR) ──p──▶ Filter Table (== ?)
//!                                              └─p──▶ Bit-vector Table ─rank+ptr─▶ Result Table
//! ```
//!
//! - The **Index Table** is a [`chisel_bloomier::PartitionedBloomier`]
//!   encoding a pointer `p(t)` per collapsed prefix (Equation 4).
//! - The **Filter Table** stores the collapsed keys themselves, turning
//!   the Bloomier filter's probabilistic false positives into exact
//!   mismatch detection (Section 4.2).
//! - The **Bit-vector Table** disambiguates the collapsed bits with a
//!   `2^stride`-bit vector and a rank-indexed pointer into the off-chip
//!   **Result Table** (Section 4.3).
//! - Updates are applied incrementally through dirty bits, singleton
//!   inserts and partition-bounded re-setups (Section 4.4).
//!
//! See [`ChiselLpm`] for the user-facing API and [`ChiselConfig`] for the
//! design-point knobs.

pub mod batch;
mod bitvector;
mod concurrent;
mod config;
mod cow;
mod engine;
mod error;
pub mod faultpoint;
mod flowcache;
pub mod image;
pub mod journal;
mod result_table;
mod shadow;
pub mod snapshot;
pub mod stats;
mod subcell;
mod update;
pub mod verify;

pub use batch::{BatchPlan, BatchReport, PlannedOp, RouteUpdate, UpdateBatch};
pub use bitvector::LeafVector;
pub use concurrent::{CachedReader, EngineSnapshot, SharedChisel};
pub use config::ChiselConfig;
pub use engine::ChiselLpm;
pub use error::ChiselError;
pub use flowcache::FlowCache;
pub use image::{HardwareImage, ImageError};
pub use journal::{
    recover, recover_with_config, DurableControl, DurableError, DurableOptions, DurableStats,
    JournalError, JournalWriter, Recovered, RecoveryReport,
};
pub use result_table::{Block, ResultTable};
pub use shadow::GroupShadow;
pub use stats::{DegradedMode, EngineStats, LookupTrace, RecoveryStats, StorageBreakdown};
pub use update::{BatchStats, RecentWithdrawals, UpdateKind, UpdateStats};
pub use verify::{verify_image, VerifyReport, Violation};
