//! Hardware memory images.
//!
//! The paper's deployment model (Section 4.4) keeps a software shadow on
//! the line card and loads "the new memory contents … into the hardware
//! engine". A [`HardwareImage`] is exactly that payload: the raw words of
//! every Index / Filter / Bit-vector / Result table plus the hash-unit
//! configuration — nothing else. `HardwareImage::lookup` executes the
//! Figure 6 data path *purely from the image*, which both documents the
//! hardware table layout and proves the image is complete (the test
//! suite replays lookups against the live engine).
//!
//! # Wire format (version 2)
//!
//! The byte stream a line card would DMA is framed for corruption
//! rejection: a 4-byte magic, a little-endian `u16` format version, then
//! one *section* per logical unit — a header section (family, default
//! route, cell count) followed by one section per sub-cell. Each section
//! is `u64` body length, `u32` FNV-1a checksum of the body, body bytes.
//! [`HardwareImage::from_bytes`] verifies every checksum, bounds every
//! declared length against the remaining bytes *before* allocating, and
//! rejects trailing garbage, so a bit flip anywhere in the stream yields
//! a typed [`ImageError`] rather than a panic or a silently wrong engine.

use chisel_bloomier::{entries_per_line, index_xor_lookup, IndexLayout, PackedWords};
use chisel_hash::HashFamily;
use chisel_prefix::bits::extract_msb;
use chisel_prefix::{AddressFamily, Key, NextHop};

use crate::bitvector::LeafVector;

/// Magic bytes opening every serialized image.
const MAGIC: [u8; 4] = *b"CHSL";

/// Current wire-format version. Version 1 was the unframed stream
/// without magic, version, or checksums; loaders reject anything else.
pub const FORMAT_VERSION: u16 = 2;

/// Why a serialized image was rejected by [`HardwareImage::from_bytes`].
///
/// Every variant is a *rejection*, never a panic: the loader treats the
/// input as untrusted line-card DMA and refuses to construct an engine
/// from bytes it cannot fully validate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ImageError {
    /// The stream ended before the named field could be read.
    Truncated {
        /// Field being decoded when the bytes ran out.
        what: &'static str,
    },
    /// The stream does not open with the `CHSL` magic.
    BadMagic,
    /// The stream declares a format version this loader does not speak.
    UnsupportedVersion {
        /// The declared version.
        version: u16,
    },
    /// A section body does not hash to its stored checksum.
    ChecksumMismatch {
        /// Which section failed verification.
        section: &'static str,
    },
    /// A field decoded but holds a value no valid engine can produce
    /// (out-of-range geometry, invalid flag combination, stray bits).
    Malformed {
        /// The offending field.
        what: &'static str,
    },
    /// A blocked Index Table partition declares a block size that
    /// disagrees with its entry width's 64-byte-line capacity — the
    /// arena alignment the one-line-per-lookup guarantee depends on.
    BlockGeometryMismatch {
        /// Entries per block the stream declares.
        declared: u32,
        /// Entries per 64-byte line implied by the entry width.
        expected: u32,
    },
}

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageError::Truncated { what } => {
                write!(f, "image truncated while reading {what}")
            }
            ImageError::BadMagic => write!(f, "image does not start with CHSL magic"),
            ImageError::UnsupportedVersion { version } => {
                write!(f, "unsupported image format version {version}")
            }
            ImageError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in {section} section")
            }
            ImageError::Malformed { what } => write!(f, "malformed image field: {what}"),
            ImageError::BlockGeometryMismatch { declared, expected } => write!(
                f,
                "blocked index declares {declared} entries per block, \
                 entry width allows {expected}"
            ),
        }
    }
}

impl std::error::Error for ImageError {}

/// One Index Table partition: its memory words and its hash unit.
#[derive(Debug, Clone)]
pub struct IndexPartImage {
    /// The XOR-encoded pointer entries, bit-packed at `w` bits each —
    /// exactly the hardware memory layout of the Section 5 storage model.
    pub words: PackedWords,
    /// The partition's `k` hash functions.
    pub family: HashFamily,
}

/// One Filter Table word: the stored key plus the valid and dirty bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterWord {
    /// The collapsed key.
    pub key: u128,
    /// Slot holds a live entry.
    pub valid: bool,
    /// Entry withdrawn but retained for route-flap absorption.
    pub dirty: bool,
}

/// One Bit-vector Table word: the leaf vector and its Result Table
/// pointer (absent when the group covers no leaf).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVectorWord {
    /// The `2^stride`-bit leaf vector.
    pub vector: LeafVector,
    /// Base address of the group's Result Table block.
    pub pointer: Option<u32>,
}

/// One sub-cell's memories.
#[derive(Debug, Clone)]
pub struct CellImage {
    /// Collapsed base length.
    pub base: u8,
    /// Collapse stride.
    pub stride: u8,
    /// Partition-selector hash unit.
    pub selector: HashFamily,
    /// Index Table partitions.
    pub index_parts: Vec<IndexPartImage>,
    /// Filter Table words.
    pub filter: Vec<FilterWord>,
    /// Bit-vector Table words (parallel to `filter`).
    pub bitvec: Vec<BitVectorWord>,
    /// Off-chip Result Table words (next-hop ids).
    pub result: Vec<u32>,
    /// Spillover TCAM contents: `(collapsed key, slot)`.
    pub spill: Vec<(u128, u32)>,
}

/// A complete engine memory image.
#[derive(Debug, Clone)]
pub struct HardwareImage {
    /// Address family served.
    pub family: AddressFamily,
    /// Sub-cell images, ascending base length.
    pub cells: Vec<CellImage>,
    /// The default route register.
    pub default_route: Option<NextHop>,
}

impl HardwareImage {
    /// Executes a lookup purely from the image, mirroring the hardware
    /// data path of Figure 6.
    ///
    /// The path is total: an inconsistent image (stale pointer, slot past
    /// the Filter Table, leaf past the vector) makes the cell miss rather
    /// than panic, because a loaded image is line-card state, not a
    /// trusted in-process engine.
    pub fn lookup(&self, key: Key) -> Option<NextHop> {
        debug_assert_eq!(key.family(), self.family);
        let width = self.family.width();
        for cell in self.cells.iter().rev() {
            let collapsed = extract_msb(key.value(), width, 0, cell.base);
            // Spillover TCAM first, then the partitioned Index Table.
            let slot = match cell.spill.iter().find(|&&(k, _)| k == collapsed) {
                Some(&(_, s)) => s,
                None => {
                    // One pass of the hash unit: the selector and every
                    // partition share the digest front end, so the key is
                    // digested once and each probe is a cheap derivation.
                    let d = cell.index_parts.len();
                    let digest = cell.selector.digest(collapsed);
                    let Some(part) = cell
                        .index_parts
                        .get(cell.selector.hash_one_digest(0, digest, d))
                    else {
                        continue;
                    };
                    // The shared XOR datapath dispatches on the arena
                    // layout (flat probes vs one blocked line), so the
                    // replay stays bit-exact with the live engine.
                    index_xor_lookup(&part.family, &part.words, digest) as u32
                }
            };
            let Some(fw) = cell.filter.get(slot as usize) else {
                continue;
            };
            if !fw.valid || fw.dirty || fw.key != collapsed {
                continue;
            }
            let Some(bw) = cell.bitvec.get(slot as usize) else {
                continue;
            };
            let leaf = extract_msb(key.value(), width, cell.base, cell.stride) as usize;
            if leaf >= bw.vector.leaves() || !bw.vector.get(leaf) {
                continue;
            }
            let rank = bw.vector.rank(leaf);
            let Some(ptr) = bw.pointer else {
                continue;
            };
            let Some(&hop) = cell.result.get(ptr as usize + (rank - 1)) else {
                continue;
            };
            return Some(NextHop::new(hop));
        }
        self.default_route
    }

    /// Total image payload in bits, charging each table its hardware
    /// word width (index: `w` packed pointer bits per entry; filter: key +
    /// 2 flag bits; bit-vector: `2^stride` + pointer bits; result: 32-bit
    /// next hops).
    pub fn payload_bits(&self) -> u64 {
        use chisel_prefix::bits::addr_bits;
        let mut total = 0u64;
        for cell in &self.cells {
            total += cell
                .index_parts
                .iter()
                .map(|p| p.words.logical_bits())
                .sum::<u64>();
            total += cell.filter.len() as u64 * (self.family.width() as u64 + 2);
            let rptr = addr_bits(cell.result.len().max(2)) as u64;
            total += cell.bitvec.len() as u64 * ((1u64 << cell.stride) + rptr);
            total += cell.result.len() as u64 * 32;
        }
        total
    }

    /// Serializes every table word into one canonical little-endian byte
    /// stream in the framed, checksummed version-2 format. Two engines
    /// whose hardware state is identical produce identical bytes — the
    /// determinism suite compares parallel and serial builds through
    /// this.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend(MAGIC);
        out.extend(FORMAT_VERSION.to_le_bytes());
        let mut header = Vec::new();
        header.push(match self.family {
            AddressFamily::V4 => 4u8,
            AddressFamily::V6 => 6u8,
        });
        push_opt_u32(&mut header, self.default_route.map(|nh| nh.id()));
        header.extend((self.cells.len() as u32).to_le_bytes());
        push_section(&mut out, &header);
        for cell in &self.cells {
            let mut body = Vec::new();
            body.push(cell.base);
            body.push(cell.stride);
            push_family(&mut body, &cell.selector);
            body.extend((cell.index_parts.len() as u32).to_le_bytes());
            for part in &cell.index_parts {
                push_family(&mut body, &part.family);
                body.extend(part.words.value_bits().to_le_bytes());
                // Layout section: a tag byte plus the declared entries
                // per 64-byte block (zero under the flat layout), so a
                // loader can verify the block geometry against the entry
                // width before trusting any probe math.
                match part.words.layout() {
                    IndexLayout::Flat => {
                        body.push(0);
                        body.extend(0u32.to_le_bytes());
                    }
                    IndexLayout::Blocked => {
                        body.push(1);
                        body.extend((part.words.line_entries() as u32).to_le_bytes());
                    }
                }
                body.extend((part.words.len() as u64).to_le_bytes());
                for w in part.words.backing_words() {
                    body.extend(w.to_le_bytes());
                }
            }
            body.extend((cell.filter.len() as u64).to_le_bytes());
            for f in &cell.filter {
                body.extend(f.key.to_le_bytes());
                body.push(u8::from(f.valid) | (u8::from(f.dirty) << 1));
            }
            for b in &cell.bitvec {
                push_opt_u32(&mut body, b.pointer);
                for w in b.vector.words() {
                    body.extend(w.to_le_bytes());
                }
            }
            body.extend((cell.result.len() as u64).to_le_bytes());
            for r in &cell.result {
                body.extend(r.to_le_bytes());
            }
            body.extend((cell.spill.len() as u32).to_le_bytes());
            for &(k, s) in &cell.spill {
                body.extend(k.to_le_bytes());
                body.extend(s.to_le_bytes());
            }
            push_section(&mut out, &body);
        }
        out
    }

    /// Deserializes a byte stream produced by [`HardwareImage::to_bytes`],
    /// treating it as untrusted: every length is bounded against the
    /// remaining input before allocation, every checksum is verified,
    /// every geometry field is range-checked against what a real engine
    /// can emit, and trailing bytes anywhere are rejected. Corrupt input
    /// yields a typed [`ImageError`]; this function never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<HardwareImage, ImageError> {
        let mut r = Reader::new(bytes);
        if r.take(4, "magic")? != MAGIC {
            return Err(ImageError::BadMagic);
        }
        let version = r.u16("version")?;
        if version != FORMAT_VERSION {
            return Err(ImageError::UnsupportedVersion { version });
        }
        let mut h = r.section("header")?;
        let family = match h.u8("family")? {
            4 => AddressFamily::V4,
            6 => AddressFamily::V6,
            _ => return Err(ImageError::Malformed { what: "family" }),
        };
        let default_route = read_opt_u32(&mut h, "default route")?.map(NextHop::new);
        let ncells = h.u32("cell count")? as usize;
        h.finish("header")?;
        if ncells > 256 {
            return Err(ImageError::Malformed { what: "cell count" });
        }
        let mut cells = Vec::with_capacity(ncells);
        for _ in 0..ncells {
            let body = r.section("cell")?;
            cells.push(read_cell(body, family)?);
        }
        r.finish("image")?;
        Ok(HardwareImage {
            family,
            cells,
            default_route,
        })
    }
}

/// FNV-1a over a section body: cheap, dependency-free, and plenty to
/// catch the bit flips and truncations a DMA transfer can suffer (this
/// is an integrity check, not an authenticity one). Shared with the
/// update journal (`crate::journal`), which frames its records with the
/// same discipline.
pub(crate) fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h = 0x811C_9DC5u32;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

fn push_section(out: &mut Vec<u8>, body: &[u8]) {
    out.extend((body.len() as u64).to_le_bytes());
    out.extend(fnv1a32(body).to_le_bytes());
    out.extend_from_slice(body);
}

fn push_opt_u32(out: &mut Vec<u8>, v: Option<u32>) {
    match v {
        Some(v) => {
            out.push(1);
            out.extend(v.to_le_bytes());
        }
        None => out.push(0),
    }
}

fn push_family(out: &mut Vec<u8>, family: &HashFamily) {
    out.extend((family.k() as u32).to_le_bytes());
    out.extend(family.seed().to_le_bytes());
    // The digest front end is configured independently of the derived
    // mixers (shared across a cell's partitions), so it is part of the
    // hash unit's state and must be in the canonical stream.
    out.extend(family.digest_seed().to_le_bytes());
}

/// Bounds-checked little-endian cursor over untrusted bytes. Every read
/// is fallible; nothing indexes past the slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ImageError> {
        if n > self.remaining() {
            return Err(ImageError::Truncated { what });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, ImageError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, ImageError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, ImageError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, ImageError> {
        let b = self.take(8, what)?;
        let mut w = [0u8; 8];
        w.copy_from_slice(b);
        Ok(u64::from_le_bytes(w))
    }

    fn u128(&mut self, what: &'static str) -> Result<u128, ImageError> {
        let b = self.take(16, what)?;
        let mut w = [0u8; 16];
        w.copy_from_slice(b);
        Ok(u128::from_le_bytes(w))
    }

    /// Reads a declared length, refusing counts the remaining bytes
    /// cannot possibly satisfy at `elem_bytes` per element — the guard
    /// that keeps a corrupted length field from driving a huge
    /// allocation before the stream runs dry.
    fn len(&mut self, elem_bytes: usize, what: &'static str) -> Result<usize, ImageError> {
        let n = self.u64(what)?;
        let n = usize::try_from(n).map_err(|_| ImageError::Truncated { what })?;
        match n.checked_mul(elem_bytes) {
            Some(total) if total <= self.remaining() => Ok(n),
            _ => Err(ImageError::Truncated { what }),
        }
    }

    /// Reads one section frame (length, checksum, body), verifies the
    /// checksum, and returns a cursor over the body.
    fn section(&mut self, what: &'static str) -> Result<Reader<'a>, ImageError> {
        let n = self.u64(what)?;
        let n = usize::try_from(n).map_err(|_| ImageError::Truncated { what })?;
        let sum = self.u32(what)?;
        let body = self.take(n, what)?;
        if fnv1a32(body) != sum {
            return Err(ImageError::ChecksumMismatch { section: what });
        }
        Ok(Reader::new(body))
    }

    /// Rejects trailing bytes — a frame that decodes but has leftover
    /// input is corrupt, not generously padded.
    fn finish(&self, what: &'static str) -> Result<(), ImageError> {
        if self.remaining() != 0 {
            return Err(ImageError::Malformed { what });
        }
        Ok(())
    }
}

fn read_opt_u32(r: &mut Reader<'_>, what: &'static str) -> Result<Option<u32>, ImageError> {
    match r.u8(what)? {
        0 => Ok(None),
        1 => Ok(Some(r.u32(what)?)),
        _ => Err(ImageError::Malformed { what }),
    }
}

fn read_family(r: &mut Reader<'_>, what: &'static str) -> Result<HashFamily, ImageError> {
    let k = r.u32(what)? as usize;
    if !(1..=64).contains(&k) {
        return Err(ImageError::Malformed { what });
    }
    let seed = r.u64(what)?;
    let digest_seed = r.u64(what)?;
    Ok(HashFamily::with_shared_digest(k, digest_seed, seed))
}

fn read_cell(mut r: Reader<'_>, family: AddressFamily) -> Result<CellImage, ImageError> {
    let width = family.width() as usize;
    let base = r.u8("cell base")?;
    let stride = r.u8("cell stride")?;
    // `extract_msb` requires base + stride <= width; LeafVector bounds
    // stride itself, but reject early so geometry errors name the field.
    if base as usize + stride as usize > width || stride > 24 {
        return Err(ImageError::Malformed {
            what: "cell geometry",
        });
    }
    let selector = read_family(&mut r, "selector hash unit")?;
    let nparts = r.u32("partition count")? as usize;
    if nparts == 0 || nparts > 4096 {
        return Err(ImageError::Malformed {
            what: "partition count",
        });
    }
    let mut index_parts = Vec::with_capacity(nparts);
    for _ in 0..nparts {
        let part_family = read_family(&mut r, "partition hash unit")?;
        let value_bits = r.u32("index entry width")?;
        if !(1..=64).contains(&value_bits) {
            return Err(ImageError::Malformed {
                what: "index entry width",
            });
        }
        let layout = match r.u8("index layout")? {
            0 => IndexLayout::Flat,
            1 => IndexLayout::Blocked,
            _ => {
                return Err(ImageError::Malformed {
                    what: "index layout",
                })
            }
        };
        let block_entries = r.u32("index block entries")?;
        match layout {
            IndexLayout::Flat => {
                if block_entries != 0 {
                    return Err(ImageError::Malformed {
                        what: "index block entries",
                    });
                }
            }
            IndexLayout::Blocked => {
                // A block size that disagrees with the entry width's
                // line capacity would break the 64-byte arena alignment
                // every blocked probe assumes — reject before probing.
                let expected = entries_per_line(value_bits) as u32;
                if block_entries != expected {
                    return Err(ImageError::BlockGeometryMismatch {
                        declared: block_entries,
                        expected,
                    });
                }
            }
        }
        let len = r.len(0, "index length")?;
        let nwords = match layout {
            IndexLayout::Flat => len
                .checked_mul(value_bits as usize)
                .map(|bits| bits.div_ceil(64)),
            IndexLayout::Blocked => len.div_ceil(block_entries as usize).checked_mul(8),
        }
        .ok_or(ImageError::Malformed {
            what: "index length",
        })?;
        if nwords.checked_mul(8).is_none_or(|b| b > r.remaining()) {
            return Err(ImageError::Truncated {
                what: "index words",
            });
        }
        let mut raw = Vec::with_capacity(nwords);
        for _ in 0..nwords {
            raw.push(r.u64("index words")?);
        }
        let words = match layout {
            IndexLayout::Flat => PackedWords::from_backing_words(len, value_bits, &raw),
            IndexLayout::Blocked => PackedWords::from_backing_words_blocked(len, value_bits, &raw),
        }
        .ok_or(ImageError::Malformed {
            what: "index words",
        })?;
        index_parts.push(IndexPartImage {
            words,
            family: part_family,
        });
    }
    let flen = r.len(17, "filter length")?;
    let mut filter = Vec::with_capacity(flen);
    for _ in 0..flen {
        let key = r.u128("filter key")?;
        let flags = r.u8("filter flags")?;
        // Bits beyond valid|dirty must be clear, and a dirty bit without
        // its valid bit names a state no engine transition produces.
        if flags & !3 != 0 || flags == 2 {
            return Err(ImageError::Malformed {
                what: "filter flags",
            });
        }
        filter.push(FilterWord {
            key,
            valid: flags & 1 != 0,
            dirty: flags & 2 != 0,
        });
    }
    let vec_words = (1usize << stride).div_ceil(64);
    let mut bitvec = Vec::with_capacity(flen);
    for _ in 0..flen {
        let pointer = read_opt_u32(&mut r, "bit-vector pointer")?;
        if vec_words.checked_mul(8).is_none_or(|b| b > r.remaining()) {
            return Err(ImageError::Truncated {
                what: "bit-vector words",
            });
        }
        let mut raw = Vec::with_capacity(vec_words);
        for _ in 0..vec_words {
            raw.push(r.u64("bit-vector words")?);
        }
        let vector = LeafVector::from_words(stride, &raw).ok_or(ImageError::Malformed {
            what: "bit-vector words",
        })?;
        bitvec.push(BitVectorWord { vector, pointer });
    }
    let rlen = r.len(4, "result length")?;
    let mut result = Vec::with_capacity(rlen);
    for _ in 0..rlen {
        result.push(r.u32("result words")?);
    }
    let slen = r.u32("spill count")? as usize;
    if slen.checked_mul(20).is_none_or(|b| b > r.remaining()) {
        return Err(ImageError::Truncated {
            what: "spill entries",
        });
    }
    let mut spill = Vec::with_capacity(slen);
    for _ in 0..slen {
        let key = r.u128("spill key")?;
        let slot = r.u32("spill slot")?;
        if slot as usize >= flen {
            return Err(ImageError::Malformed { what: "spill slot" });
        }
        spill.push((key, slot));
    }
    r.finish("cell")?;
    Ok(CellImage {
        base,
        stride,
        selector,
        index_parts,
        filter,
        bitvec,
        result,
        spill,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChiselConfig, ChiselLpm};
    use chisel_prefix::{NextHop, Prefix, RoutingTable};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_engine(seed: u64, n: usize) -> ChiselLpm {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = RoutingTable::new_v4();
        while t.len() < n {
            let len = rng.gen_range(1..=32u8);
            let bits = rng.gen::<u128>() & chisel_prefix::bits::mask(len);
            t.insert(
                Prefix::new(AddressFamily::V4, bits, len).unwrap(),
                NextHop::new(rng.gen_range(0..256)),
            );
        }
        ChiselLpm::build(&t, ChiselConfig::ipv4()).unwrap()
    }

    #[test]
    fn image_replays_engine_lookups() {
        let engine = random_engine(1, 3_000);
        let image = engine.export_image();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20_000 {
            let key = Key::from_raw(AddressFamily::V4, rng.gen::<u32>() as u128);
            assert_eq!(
                image.lookup(key),
                engine.lookup(key),
                "image diverged at {key}"
            );
        }
    }

    #[test]
    fn image_survives_updates() {
        let mut engine = random_engine(3, 1_000);
        let mut rng = StdRng::seed_from_u64(4);
        for i in 0..2_000u32 {
            let len = rng.gen_range(1..=32u8);
            let bits = rng.gen::<u128>() & chisel_prefix::bits::mask(len);
            let p = Prefix::new(AddressFamily::V4, bits, len).unwrap();
            if rng.gen_bool(0.4) {
                engine.withdraw(p).unwrap();
            } else {
                engine.announce(p, NextHop::new(i)).unwrap();
            }
        }
        let image = engine.export_image();
        for _ in 0..10_000 {
            let key = Key::from_raw(AddressFamily::V4, rng.gen::<u32>() as u128);
            assert_eq!(image.lookup(key), engine.lookup(key));
        }
    }

    #[test]
    fn payload_accounting_nonzero_and_monotone() {
        let small = random_engine(5, 500).export_image();
        let large = random_engine(5, 4_000).export_image();
        assert!(small.payload_bits() > 0);
        assert!(large.payload_bits() > small.payload_bits());
    }

    #[test]
    fn default_route_in_image() {
        let mut t = RoutingTable::new_v4();
        t.insert(Prefix::default_route(AddressFamily::V4), NextHop::new(9));
        let engine = ChiselLpm::build(&t, ChiselConfig::ipv4()).unwrap();
        let image = engine.export_image();
        assert_eq!(
            image.lookup("1.2.3.4".parse().unwrap()),
            Some(NextHop::new(9))
        );
    }

    #[test]
    fn bytes_round_trip_exactly() {
        let engine = random_engine(7, 1_500);
        let image = engine.export_image();
        let bytes = image.to_bytes();
        let loaded = HardwareImage::from_bytes(&bytes).expect("canonical bytes load");
        assert_eq!(loaded.to_bytes(), bytes, "round trip must be byte-exact");
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..10_000 {
            let key = Key::from_raw(AddressFamily::V4, rng.gen::<u32>() as u128);
            assert_eq!(loaded.lookup(key), engine.lookup(key));
        }
    }

    #[test]
    fn loader_rejects_bad_magic_and_version() {
        let bytes = random_engine(9, 200).export_image().to_bytes();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(
            HardwareImage::from_bytes(&bad).unwrap_err(),
            ImageError::BadMagic
        );
        let mut old = bytes.clone();
        old[4] = 1;
        old[5] = 0;
        assert_eq!(
            HardwareImage::from_bytes(&old).unwrap_err(),
            ImageError::UnsupportedVersion { version: 1 }
        );
        assert_eq!(
            HardwareImage::from_bytes(&bytes[..3]).unwrap_err(),
            ImageError::Truncated { what: "magic" }
        );
    }

    /// Re-frames the first cell section with `f` applied to its body and
    /// the checksum recomputed — the way to exercise semantic rejections
    /// that sit *behind* the integrity check.
    fn rewrite_first_cell(bytes: &[u8], f: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
        let hlen = u64::from_le_bytes(bytes[6..14].try_into().unwrap()) as usize;
        let cell = 6 + 12 + hlen;
        let clen = u64::from_le_bytes(bytes[cell..cell + 8].try_into().unwrap()) as usize;
        let mut body = bytes[cell + 12..cell + 12 + clen].to_vec();
        f(&mut body);
        let mut out = bytes[..cell].to_vec();
        out.extend((body.len() as u64).to_le_bytes());
        out.extend(fnv1a32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&bytes[cell + 12 + clen..]);
        out
    }

    #[test]
    fn loader_rejects_block_geometry_mismatch() {
        let engine = random_engine(11, 200);
        let image = engine.export_image();
        let part = &image.cells[0].index_parts[0];
        assert_eq!(part.words.layout(), IndexLayout::Blocked);
        let expected = part.words.line_entries() as u32;
        let bytes = image.to_bytes();
        // Cell body: base 1 + stride 1 + selector 20 + part count 4 +
        // part family 20 + entry width 4 puts the layout section at 50.
        let lied = rewrite_first_cell(&bytes, |body| {
            body[51..55].copy_from_slice(&(expected + 1).to_le_bytes());
        });
        assert_eq!(
            HardwareImage::from_bytes(&lied).unwrap_err(),
            ImageError::BlockGeometryMismatch {
                declared: expected + 1,
                expected,
            }
        );
        let unknown = rewrite_first_cell(&bytes, |body| body[50] = 2);
        assert_eq!(
            HardwareImage::from_bytes(&unknown).unwrap_err(),
            ImageError::Malformed {
                what: "index layout"
            }
        );
        // The untouched re-frame must still load — proves the helper
        // rewrites frames faithfully and the rejections above are real.
        assert!(HardwareImage::from_bytes(&rewrite_first_cell(&bytes, |_| {})).is_ok());
    }

    #[test]
    fn loader_rejects_checksum_damage_and_trailing_bytes() {
        let bytes = random_engine(10, 200).export_image().to_bytes();
        // Flip one byte inside the header section body (magic 4 +
        // version 2 + frame 12 puts the body at offset 18).
        let mut flipped = bytes.clone();
        flipped[18] ^= 0x40;
        assert_eq!(
            HardwareImage::from_bytes(&flipped).unwrap_err(),
            ImageError::ChecksumMismatch { section: "header" }
        );
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(
            HardwareImage::from_bytes(&padded).unwrap_err(),
            ImageError::Malformed { what: "image" }
        );
    }
}
