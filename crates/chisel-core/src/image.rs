//! Hardware memory images.
//!
//! The paper's deployment model (Section 4.4) keeps a software shadow on
//! the line card and loads "the new memory contents … into the hardware
//! engine". A [`HardwareImage`] is exactly that payload: the raw words of
//! every Index / Filter / Bit-vector / Result table plus the hash-unit
//! configuration — nothing else. `HardwareImage::lookup` executes the
//! Figure 6 data path *purely from the image*, which both documents the
//! hardware table layout and proves the image is complete (the test
//! suite replays lookups against the live engine).

use chisel_bloomier::PackedWords;
use chisel_hash::HashFamily;
use chisel_prefix::bits::extract_msb;
use chisel_prefix::{AddressFamily, Key, NextHop};

use crate::bitvector::LeafVector;

/// One Index Table partition: its memory words and its hash unit.
#[derive(Debug, Clone)]
pub struct IndexPartImage {
    /// The XOR-encoded pointer entries, bit-packed at `w` bits each —
    /// exactly the hardware memory layout of the Section 5 storage model.
    pub words: PackedWords,
    /// The partition's `k` hash functions.
    pub family: HashFamily,
}

/// One Filter Table word: the stored key plus the valid and dirty bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterWord {
    /// The collapsed key.
    pub key: u128,
    /// Slot holds a live entry.
    pub valid: bool,
    /// Entry withdrawn but retained for route-flap absorption.
    pub dirty: bool,
}

/// One Bit-vector Table word: the leaf vector and its Result Table
/// pointer (absent when the group covers no leaf).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVectorWord {
    /// The `2^stride`-bit leaf vector.
    pub vector: LeafVector,
    /// Base address of the group's Result Table block.
    pub pointer: Option<u32>,
}

/// One sub-cell's memories.
#[derive(Debug, Clone)]
pub struct CellImage {
    /// Collapsed base length.
    pub base: u8,
    /// Collapse stride.
    pub stride: u8,
    /// Partition-selector hash unit.
    pub selector: HashFamily,
    /// Index Table partitions.
    pub index_parts: Vec<IndexPartImage>,
    /// Filter Table words.
    pub filter: Vec<FilterWord>,
    /// Bit-vector Table words (parallel to `filter`).
    pub bitvec: Vec<BitVectorWord>,
    /// Off-chip Result Table words (next-hop ids).
    pub result: Vec<u32>,
    /// Spillover TCAM contents: `(collapsed key, slot)`.
    pub spill: Vec<(u128, u32)>,
}

/// A complete engine memory image.
#[derive(Debug, Clone)]
pub struct HardwareImage {
    /// Address family served.
    pub family: AddressFamily,
    /// Sub-cell images, ascending base length.
    pub cells: Vec<CellImage>,
    /// The default route register.
    pub default_route: Option<NextHop>,
}

impl HardwareImage {
    /// Executes a lookup purely from the image, mirroring the hardware
    /// data path of Figure 6.
    pub fn lookup(&self, key: Key) -> Option<NextHop> {
        debug_assert_eq!(key.family(), self.family);
        let width = self.family.width();
        for cell in self.cells.iter().rev() {
            let collapsed = extract_msb(key.value(), width, 0, cell.base);
            // Spillover TCAM first, then the partitioned Index Table.
            let slot = match cell.spill.iter().find(|&&(k, _)| k == collapsed) {
                Some(&(_, s)) => s,
                None => {
                    // One pass of the hash unit: the selector and every
                    // partition share the digest front end, so the key is
                    // digested once and each probe is a cheap derivation.
                    let d = cell.index_parts.len();
                    let digest = cell.selector.digest(collapsed);
                    let part = &cell.index_parts[cell.selector.hash_one_digest(0, digest, d)];
                    let m = part.words.len();
                    let mut acc = 0u32;
                    for i in 0..part.family.k() {
                        acc ^= part.words.get(part.family.hash_one_digest(i, digest, m));
                    }
                    acc
                }
            };
            let Some(fw) = cell.filter.get(slot as usize) else {
                continue;
            };
            if !fw.valid || fw.dirty || fw.key != collapsed {
                continue;
            }
            let bw = &cell.bitvec[slot as usize];
            let leaf = extract_msb(key.value(), width, cell.base, cell.stride) as usize;
            if !bw.vector.get(leaf) {
                continue;
            }
            let rank = bw.vector.rank(leaf);
            let ptr = bw.pointer.expect("set leaf implies a block") as usize;
            return Some(NextHop::new(cell.result[ptr + rank - 1]));
        }
        self.default_route
    }

    /// Total image payload in bits, charging each table its hardware
    /// word width (index: `w` packed pointer bits per entry; filter: key +
    /// 2 flag bits; bit-vector: `2^stride` + pointer bits; result: 32-bit
    /// next hops).
    pub fn payload_bits(&self) -> u64 {
        use chisel_prefix::bits::addr_bits;
        let mut total = 0u64;
        for cell in &self.cells {
            total += cell
                .index_parts
                .iter()
                .map(|p| p.words.logical_bits())
                .sum::<u64>();
            total += cell.filter.len() as u64 * (self.family.width() as u64 + 2);
            let rptr = addr_bits(cell.result.len().max(2)) as u64;
            total += cell.bitvec.len() as u64 * ((1u64 << cell.stride) + rptr);
            total += cell.result.len() as u64 * 32;
        }
        total
    }

    /// Serializes every table word into one canonical little-endian byte
    /// stream. Two engines whose hardware state is identical produce
    /// identical bytes — the determinism suite compares parallel and
    /// serial builds through this.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(match self.family {
            AddressFamily::V4 => 4u8,
            AddressFamily::V6 => 6u8,
        });
        push_opt_u32(&mut out, self.default_route.map(|nh| nh.id()));
        out.extend((self.cells.len() as u32).to_le_bytes());
        for cell in &self.cells {
            out.push(cell.base);
            out.push(cell.stride);
            push_family(&mut out, &cell.selector);
            out.extend((cell.index_parts.len() as u32).to_le_bytes());
            for part in &cell.index_parts {
                push_family(&mut out, &part.family);
                out.extend(part.words.value_bits().to_le_bytes());
                out.extend((part.words.len() as u64).to_le_bytes());
                for w in part.words.backing_words() {
                    out.extend(w.to_le_bytes());
                }
            }
            out.extend((cell.filter.len() as u64).to_le_bytes());
            for f in &cell.filter {
                out.extend(f.key.to_le_bytes());
                out.push(u8::from(f.valid) | (u8::from(f.dirty) << 1));
            }
            for b in &cell.bitvec {
                push_opt_u32(&mut out, b.pointer);
                for w in b.vector.words() {
                    out.extend(w.to_le_bytes());
                }
            }
            out.extend((cell.result.len() as u64).to_le_bytes());
            for r in &cell.result {
                out.extend(r.to_le_bytes());
            }
            out.extend((cell.spill.len() as u32).to_le_bytes());
            for &(k, s) in &cell.spill {
                out.extend(k.to_le_bytes());
                out.extend(s.to_le_bytes());
            }
        }
        out
    }
}

fn push_opt_u32(out: &mut Vec<u8>, v: Option<u32>) {
    match v {
        Some(v) => {
            out.push(1);
            out.extend(v.to_le_bytes());
        }
        None => out.push(0),
    }
}

fn push_family(out: &mut Vec<u8>, family: &HashFamily) {
    out.extend((family.k() as u32).to_le_bytes());
    out.extend(family.seed().to_le_bytes());
    // The digest front end is configured independently of the derived
    // mixers (shared across a cell's partitions), so it is part of the
    // hash unit's state and must be in the canonical stream.
    out.extend(family.digest_seed().to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChiselConfig, ChiselLpm};
    use chisel_prefix::{NextHop, Prefix, RoutingTable};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_engine(seed: u64, n: usize) -> ChiselLpm {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = RoutingTable::new_v4();
        while t.len() < n {
            let len = rng.gen_range(1..=32u8);
            let bits = rng.gen::<u128>() & chisel_prefix::bits::mask(len);
            t.insert(
                Prefix::new(AddressFamily::V4, bits, len).unwrap(),
                NextHop::new(rng.gen_range(0..256)),
            );
        }
        ChiselLpm::build(&t, ChiselConfig::ipv4()).unwrap()
    }

    #[test]
    fn image_replays_engine_lookups() {
        let engine = random_engine(1, 3_000);
        let image = engine.export_image();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20_000 {
            let key = Key::from_raw(AddressFamily::V4, rng.gen::<u32>() as u128);
            assert_eq!(
                image.lookup(key),
                engine.lookup(key),
                "image diverged at {key}"
            );
        }
    }

    #[test]
    fn image_survives_updates() {
        let mut engine = random_engine(3, 1_000);
        let mut rng = StdRng::seed_from_u64(4);
        for i in 0..2_000u32 {
            let len = rng.gen_range(1..=32u8);
            let bits = rng.gen::<u128>() & chisel_prefix::bits::mask(len);
            let p = Prefix::new(AddressFamily::V4, bits, len).unwrap();
            if rng.gen_bool(0.4) {
                engine.withdraw(p).unwrap();
            } else {
                engine.announce(p, NextHop::new(i)).unwrap();
            }
        }
        let image = engine.export_image();
        for _ in 0..10_000 {
            let key = Key::from_raw(AddressFamily::V4, rng.gen::<u32>() as u128);
            assert_eq!(image.lookup(key), engine.lookup(key));
        }
    }

    #[test]
    fn payload_accounting_nonzero_and_monotone() {
        let small = random_engine(5, 500).export_image();
        let large = random_engine(5, 4_000).export_image();
        assert!(small.payload_bits() > 0);
        assert!(large.payload_bits() > small.payload_bits());
    }

    #[test]
    fn default_route_in_image() {
        let mut t = RoutingTable::new_v4();
        t.insert(Prefix::default_route(AddressFamily::V4), NextHop::new(9));
        let engine = ChiselLpm::build(&t, ChiselConfig::ipv4()).unwrap();
        let image = engine.export_image();
        assert_eq!(
            image.lookup("1.2.3.4".parse().unwrap()),
            Some(NextHop::new(9))
        );
    }
}
