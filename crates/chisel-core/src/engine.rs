//! The Chisel LPM engine: sub-cells searched in priority order, a default
//! route, and the incremental update front-end (paper Sections 4.3–4.4).

use std::collections::BTreeMap;
use std::sync::Arc;

use chisel_prefix::collapse::StridePlan;
use chisel_prefix::parallel::{chunk_ranges, parallel_map, resolve_threads};
use chisel_prefix::{AddressFamily, Key, NextHop, Prefix, RouteEntry, RoutingTable};

use chisel_bloomier::RebuildCandidate;

use crate::batch::{BatchPlan, BatchReport, RouteUpdate};
use crate::faultpoint;
use crate::shadow::GroupShadow;
use crate::stats::{DegradedMode, EngineStats, LookupTrace, RecoveryStats, StorageBreakdown};
use crate::subcell::{
    AnnounceOutcome, BatchStep, CellParams, PartitionResetupPlan, PreparedKey, SubCell,
};
use crate::update::{BatchStats, RecentWithdrawals, UpdateKind, UpdateStats};
use crate::{ChiselConfig, ChiselError};

/// The Chisel longest-prefix-matching engine.
///
/// ```
/// use chisel_core::{ChiselLpm, ChiselConfig};
/// use chisel_prefix::{RoutingTable, NextHop, Key};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut table = RoutingTable::new_v4();
/// table.insert("10.0.0.0/8".parse()?, NextHop::new(1));
/// table.insert("10.1.0.0/16".parse()?, NextHop::new(2));
/// let mut engine = ChiselLpm::build(&table, ChiselConfig::ipv4())?;
///
/// assert_eq!(engine.lookup("10.1.2.3".parse()?), Some(NextHop::new(2)));
///
/// // Incremental update:
/// engine.announce("11.0.0.0/8".parse()?, NextHop::new(3))?;
/// assert_eq!(engine.lookup("11.9.9.9".parse()?), Some(NextHop::new(3)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ChiselLpm {
    config: ChiselConfig,
    plan: StridePlan,
    /// Sub-cells behind `Arc` so cloning the engine is cheap: the
    /// concurrent snapshot writer clones the whole engine per update and
    /// deep-copies (via [`Arc::make_mut`]) only the sub-cell it mutates.
    cells: Vec<Arc<SubCell>>,
    default_route: Option<NextHop>,
    stats: UpdateStats,
    /// Batched-update counters ([`ChiselLpm::apply_batch`]).
    batch: BatchStats,
    recent: RecentWithdrawals,
    len: usize,
    /// Monotonic update counter, bumped at the top of every announce and
    /// withdraw (before any table is touched). A flow cache stamps its
    /// entries with this and treats any mismatch as a miss, so cached
    /// results can never survive an update — see [`crate::FlowCache`].
    version: u64,
}

impl ChiselLpm {
    /// Builds an engine over a routing table.
    ///
    /// # Errors
    ///
    /// Fails if the Bloomier setup cannot converge within the spillover
    /// budget, or if the table's family disagrees with the configuration.
    pub fn build(table: &RoutingTable, config: ChiselConfig) -> Result<Self, ChiselError> {
        if table.family() != config.family {
            return Err(ChiselError::FamilyMismatch);
        }
        let width = config.family.width();
        let plan = match &config.plan {
            Some(p) => p.clone(),
            None => StridePlan::covering(&table.length_histogram(), config.stride, width),
        };
        let threads = resolve_threads(config.build_threads);
        let params = CellParams {
            k: config.k,
            m_per_key: config.m_per_key,
            partitions: config.partitions,
            seed: config.seed,
            spill_capacity: config.spill_capacity,
            flap_absorption: config.flap_absorption,
            build_threads: threads,
            resetup_retries: config.resetup_retries,
            blocked_index: config.blocked_index,
        };

        // Phase A: group prefixes per cell by collapsed key. Contiguous
        // chunks of the (deterministically ordered) table are grouped on
        // worker threads and merged chunk-by-chunk; per-prefix inserts
        // land in BTreeMaps and each prefix appears in exactly one chunk,
        // so the merged result is identical for any thread count.
        let ncells = plan.num_cells();
        type CellGroups = Vec<BTreeMap<u128, GroupShadow>>;
        type ChunkGroups = Result<(CellGroups, Option<NextHop>, usize), ChiselError>;
        let entries: Vec<RouteEntry> = table.iter().collect();
        let ranges = chunk_ranges(entries.len(), threads);
        let partials: Vec<ChunkGroups> = parallel_map(threads, &ranges, |_, range| {
            let mut groups: CellGroups = vec![BTreeMap::new(); ncells];
            let mut default_route = None;
            let mut len = 0usize;
            for e in &entries[range.clone()] {
                if e.prefix.is_empty() {
                    default_route = Some(e.next_hop);
                    len += 1;
                    continue;
                }
                let ci = plan
                    .cell_for(e.prefix.len())
                    .ok_or(ChiselError::UnsupportedLength {
                        len: e.prefix.len(),
                    })?;
                let base = plan.cells()[ci].base;
                let collapsed = e.prefix.truncate(base).bits();
                let depth = e.prefix.len() - base;
                let suffix = e.prefix.suffix_below(base);
                groups[ci]
                    .entry(collapsed)
                    .or_default()
                    .insert(depth, suffix, e.next_hop);
                len += 1;
            }
            Ok((groups, default_route, len))
        });
        let mut groups: CellGroups = vec![BTreeMap::new(); ncells];
        let mut default_route = None;
        let mut len = 0usize;
        for partial in partials {
            let (part_groups, part_default, part_len) = partial?;
            for (ci, cell) in part_groups.into_iter().enumerate() {
                for (bits, shadow) in cell {
                    groups[ci].entry(bits).or_default().absorb(shadow);
                }
            }
            // The table holds at most one length-0 prefix, so at most one
            // chunk reports a default route.
            default_route = default_route.or(part_default);
            len += part_len;
        }

        // Phases B and C run inside each sub-cell build: the per-group
        // leaf fills and the d Bloomier partition setups fan out over the
        // same worker budget (see `SubCell::install_groups`).
        let mut cells = Vec::with_capacity(ncells);
        for (ci, cell_groups) in groups.into_iter().enumerate() {
            // Deterministic sizing (Section 4.3.2): provision the Filter /
            // Bit-vector tables for the cell's *original prefix* count
            // (with headroom), not its collapsed-group count — this keeps
            // Index Table load low so singleton inserts nearly always
            // succeed.
            let prefixes: usize = cell_groups.values().map(GroupShadow::len).sum();
            let capacity = ((prefixes as f64 * config.slack).ceil() as usize).max(64);
            cells.push(Arc::new(SubCell::build(
                plan.cells()[ci],
                width,
                params,
                cell_groups.into_iter().collect(),
                capacity,
            )?));
        }
        let flap_window = config.flap_window;
        Ok(ChiselLpm {
            config,
            plan,
            cells,
            default_route,
            stats: UpdateStats::default(),
            batch: BatchStats::default(),
            recent: RecentWithdrawals::new(flap_window),
            len,
            version: 0,
        })
    }

    /// The engine's update version: bumped by every announce/withdraw. Two
    /// reads of the same version are guaranteed to see identical lookup
    /// results, which is the coherence contract [`crate::FlowCache`]
    /// builds on.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ChiselConfig {
        &self.config
    }

    /// The stride plan in use.
    pub fn plan(&self) -> &StridePlan {
        &self.plan
    }

    /// The address family served.
    pub fn family(&self) -> AddressFamily {
        self.config.family
    }

    /// Number of original prefixes currently routable (including the
    /// default route).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the engine holds no routes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Longest-prefix-match lookup.
    ///
    /// Hardware searches all sub-cells in parallel and priority-encodes;
    /// here the cells are probed from the longest base down and the first
    /// match wins — the results are identical because cell length ranges
    /// are disjoint.
    pub fn lookup(&self, key: Key) -> Option<NextHop> {
        let mut trace = LookupTrace::default();
        self.lookup_traced(key, &mut trace)
    }

    /// Lookup with memory-access tracing (for the latency experiments).
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the key family differs from the engine's.
    pub fn lookup_traced(&self, key: Key, trace: &mut LookupTrace) -> Option<NextHop> {
        debug_assert_eq!(key.family(), self.config.family);
        for cell in self.cells.iter().rev() {
            // Only live groups can match: branch past drained cells
            // without touching their tables.
            if cell.is_empty() {
                continue;
            }
            if let Some(nh) = cell.lookup(key.value(), trace) {
                return Some(nh);
            }
        }
        self.default_route
    }

    /// Longest-prefix-match over a batch of keys, software-pipelined.
    ///
    /// Produces exactly what per-key [`ChiselLpm::lookup`] would (the
    /// property suite asserts this), but restructures the memory accesses
    /// for throughput: keys are processed in small lanes, and within each
    /// lane every dependent table read (Index → Filter/Bit-vector →
    /// Result) is prefetched for all keys before any of them is consumed.
    /// This hides DRAM latency behind the independent probes of the other
    /// lane members — the software analogue of the hardware pipeline of
    /// paper Section 5, where successive packets occupy successive
    /// pipeline stages.
    ///
    /// # Panics
    ///
    /// Panics if `keys` and `out` differ in length, or (debug builds) on
    /// a key-family mismatch.
    pub fn lookup_batch(&self, keys: &[Key], out: &mut [Option<NextHop>]) {
        // Full-depth lanes: with d-partitioned cells a wave needs several
        // keys *per partition* to fill 4-wide gather groups, and the
        // lane-depth sweep in `chisel-bench` measures 64 fastest on both
        // uniform and Zipf streams; `lookup_batch_lanes` exposes the knob.
        self.lookup_batch_lanes(keys, out, 64);
    }

    /// [`ChiselLpm::lookup_batch`] with an explicit lane depth.
    ///
    /// `lanes` is the number of keys in flight at once (clamped to
    /// `1..=64`); deeper lanes hide more DRAM latency per prefetch wave
    /// and give the vectorized Index Table probe more lanes per gather,
    /// at the cost of more prefetched lines resident at once. The
    /// access-budget sweep in `chisel-bench` measures this trade-off.
    ///
    /// # Panics
    ///
    /// Panics if `keys` and `out` differ in length, or (debug builds) on
    /// a key-family mismatch.
    pub fn lookup_batch_lanes(&self, keys: &[Key], out: &mut [Option<NextHop>], lanes: usize) {
        // ASSERT-OK: documented `# Panics` contract, checked once per
        // batch, amortized over every key.
        assert_eq!(
            keys.len(),
            out.len(),
            "lookup_batch requires matching key/output slices"
        );
        const MAX_LANES: usize = 64;
        let lanes = lanes.clamp(1, MAX_LANES);
        for (kc, oc) in keys.chunks(lanes).zip(out.chunks_mut(lanes)) {
            let mut done = [false; MAX_LANES];
            // Cells are probed longest-base first, exactly like the
            // scalar path; a key leaves the lane at its first match.
            for cell in self.cells.iter().rev() {
                if cell.is_empty() {
                    continue; // no live group can match — skip the cell
                }
                // Stage 1: collapse + hash each still-live lane key once
                // for this cell, then kick off the Index Table (Bloomier)
                // probes. Live lanes are compacted to the front so the
                // batched slot resolver sees a dense digest array; the
                // prepared digest is reused by every later stage.
                let mut prep = [PreparedKey::default(); MAX_LANES];
                let mut lane_of = [0usize; MAX_LANES];
                let mut live = 0usize;
                for (i, key) in kc.iter().enumerate() {
                    if !done[i] {
                        debug_assert_eq!(key.family(), self.config.family);
                        prep[live] = cell.prepare(key.value());
                        cell.prefetch_index(&prep[live]);
                        lane_of[live] = i;
                        live += 1;
                    }
                }
                // Stage 2: resolve every live slot in one call (AVX2
                // gather lanes when available, scalar otherwise); prefetch
                // the Filter/Bit-vector rows they name.
                let mut slots = [0u32; MAX_LANES];
                cell.probe_slots(&prep[..live], &mut slots[..live]);
                for &slot in &slots[..live] {
                    cell.prefetch_row(slot);
                }
                // Stage 3: validate and read out the next hops.
                for j in 0..live {
                    if let Some(nh) = cell.lookup_at(slots[j], &prep[j]) {
                        oc[lane_of[j]] = Some(nh);
                        done[lane_of[j]] = true;
                    }
                }
                if done[..kc.len()].iter().all(|&d| d) {
                    break;
                }
            }
            for (i, o) in oc.iter_mut().enumerate() {
                if !done[i] {
                    *o = self.default_route;
                }
            }
        }
    }

    /// Applies a BGP `announce(p, len, h)`: inserts the prefix or updates
    /// its next hop, classifying how the update was absorbed (Figure 14).
    ///
    /// # Errors
    ///
    /// Fails on family mismatch or when the spillover TCAM overflows
    /// during a forced re-setup.
    pub fn announce(
        &mut self,
        prefix: Prefix,
        next_hop: NextHop,
    ) -> Result<UpdateKind, ChiselError> {
        if prefix.family() != self.config.family {
            return Err(ChiselError::FamilyMismatch);
        }
        // Conservative cache invalidation: any update that may change any
        // lookup result gets a fresh version, even if it turns out a no-op.
        self.version += 1;
        if prefix.is_empty() {
            // `len` tracks state (was the slot empty?), not the flap
            // classification: a withdraw/re-announce flap of the default
            // route removed a route and now restores it.
            let restored = self.default_route.is_none();
            let kind = if self.recent.take(&prefix) {
                UpdateKind::RouteFlap
            } else if restored {
                UpdateKind::AddCollapsed
            } else {
                UpdateKind::NextHopChange
            };
            if restored {
                self.len += 1;
            }
            self.default_route = Some(next_hop);
            self.stats.record(kind);
            return Ok(kind);
        }
        let ci = self
            .plan
            .cell_for(prefix.len())
            .ok_or(ChiselError::UnsupportedLength { len: prefix.len() })?;
        let base = self.plan.cells()[ci].base;
        let collapsed = prefix.truncate(base).bits();
        let depth = prefix.len() - base;
        let suffix = prefix.suffix_below(base);
        let flap = self.recent.take(&prefix);
        // Copy-on-write: only the touched sub-cell is deep-copied when
        // this engine shares cells with published snapshots.
        let outcome =
            Arc::make_mut(&mut self.cells[ci]).announce(collapsed, depth, suffix, next_hop)?;
        let kind = match outcome {
            AnnounceOutcome::DirtyRestore => UpdateKind::RouteFlap,
            AnnounceOutcome::NextHopOnly => {
                if flap {
                    UpdateKind::RouteFlap
                } else {
                    UpdateKind::NextHopChange
                }
            }
            AnnounceOutcome::Collapsed => {
                if flap {
                    UpdateKind::RouteFlap
                } else {
                    UpdateKind::AddCollapsed
                }
            }
            AnnounceOutcome::Singleton => UpdateKind::AddSingleton,
            AnnounceOutcome::Resetup => UpdateKind::Resetup,
            AnnounceOutcome::DegradedSpill => UpdateKind::DegradedSpill,
        };
        // PARTIAL_UPDATE models the control plane dying between the
        // sub-cell mutation and the bookkeeping: *this* engine value is
        // deliberately torn (cell updated, len/stats not). The snapshot
        // path clones before mutating and publishes only on `Ok`, so
        // `SharedChisel` readers never observe the tear — exactly the
        // invariant the fault suite pins down.
        if faultpoint::fire(faultpoint::PARTIAL_UPDATE) {
            return Err(ChiselError::FaultInjected {
                site: faultpoint::PARTIAL_UPDATE,
            });
        }
        if !matches!(outcome, AnnounceOutcome::NextHopOnly) {
            self.len += 1;
        }
        self.stats.record(kind);
        Ok(kind)
    }

    /// Applies a BGP `withdraw(p, len)`: removes the prefix if present.
    ///
    /// # Errors
    ///
    /// Fails on family mismatch.
    pub fn withdraw(&mut self, prefix: Prefix) -> Result<UpdateKind, ChiselError> {
        if prefix.family() != self.config.family {
            return Err(ChiselError::FamilyMismatch);
        }
        self.version += 1;
        let existed = if prefix.is_empty() {
            self.default_route.take().is_some()
        } else {
            let ci = self
                .plan
                .cell_for(prefix.len())
                .ok_or(ChiselError::UnsupportedLength { len: prefix.len() })?;
            let base = self.plan.cells()[ci].base;
            Arc::make_mut(&mut self.cells[ci]).withdraw(
                prefix.truncate(base).bits(),
                prefix.len() - base,
                prefix.suffix_below(base),
            )
        };
        // See `announce`: tears the bare engine between mutation and
        // bookkeeping; the snapshot path discards the torn clone.
        if faultpoint::fire(faultpoint::PARTIAL_UPDATE) {
            return Err(ChiselError::FaultInjected {
                site: faultpoint::PARTIAL_UPDATE,
            });
        }
        if existed {
            self.len -= 1;
            self.recent.record(prefix);
        }
        self.stats.record(UpdateKind::Withdraw);
        Ok(UpdateKind::Withdraw)
    }

    /// Applies a whole window of updates as one logical change.
    ///
    /// The window is coalesced to its per-prefix net effect first (an
    /// announce/withdraw/announce flap collapses to one change, next-hop
    /// churn to the last write — see [`BatchPlan`]), the residue is
    /// applied incrementally, and every insert that would force a
    /// partition re-setup is *deferred*: the key is parked transiently in
    /// the spillover TCAM (so the cell stays fully consistent and
    /// serveable), then all required re-setups run **in parallel** over
    /// the build-thread pool as build-then-commit rebuild units — one
    /// unit per touched (cell, partition), committed in a fixed order.
    /// Inserts sharing a unit cost one rebuild instead of one each.
    ///
    /// One `version` bump covers the window, so a [`crate::FlowCache`]
    /// invalidates wholesale once per batch; through
    /// [`crate::SharedChisel::apply_batch`] the window publishes as a
    /// single snapshot generation while readers keep serving the previous
    /// one.
    ///
    /// Invalid events (wrong family / unsupported length) and events of
    /// residual ops rolled back by a failed re-setup with no TCAM room
    /// are reported in [`BatchReport::rejected_events`] instead of
    /// failing the window: the resulting state is exactly the sequential
    /// application of the window minus those events.
    ///
    /// # Errors
    ///
    /// Structural Bloomier failures and injected faults propagate, and
    /// the bare engine may then be partially updated (exactly like a
    /// failed [`ChiselLpm::announce`]); the snapshot path discards the
    /// torn clone, so published generations are always whole windows.
    pub fn apply_batch(&mut self, events: &[RouteUpdate]) -> Result<BatchReport, ChiselError> {
        let mut report = BatchReport {
            ingested: events.len(),
            ..BatchReport::default()
        };
        if events.is_empty() {
            return Ok(report);
        }
        // One conservative flow-cache invalidation for the whole window.
        self.version += 1;

        // Validate per event up front so one bad event cannot poison the
        // window — the sequential path would reject it and carry on.
        let mut valid: Vec<(usize, RouteUpdate)> = Vec::with_capacity(events.len());
        for (i, ev) in events.iter().enumerate() {
            let p = ev.prefix();
            if p.family() != self.config.family
                || (!p.is_empty() && self.plan.cell_for(p.len()).is_none())
            {
                report.rejected_events.push(i);
            } else {
                valid.push((i, *ev));
            }
        }

        // Coalesce to the per-prefix net effect, keeping the raw window
        // positions each residual op stands for.
        let residual: Vec<RouteUpdate> = valid.iter().map(|&(_, ev)| ev).collect();
        let bplan = BatchPlan::of(&residual);
        report.coalesced = bplan.coalesced();
        let absorbed_raw: Vec<Vec<usize>> = bplan
            .ops
            .iter()
            .map(|op| op.absorbed.iter().map(|&pos| valid[pos].0).collect())
            .collect();

        // Incremental pass: apply residual ops in order. Each prefix has
        // at most one op, so a deferred (TCAM-parked) insert can never be
        // emptied or withdrawn later in the same window.
        struct PendingInsert {
            /// Residual-op index (into `bplan.ops`).
            op: usize,
            ci: usize,
            collapsed: u128,
            slot: u32,
        }
        let mut pending: Vec<PendingInsert> = Vec::new();
        let mut kinds: Vec<Option<UpdateKind>> = vec![None; bplan.ops.len()];
        for (oi, planned) in bplan.ops.iter().enumerate() {
            match planned.op {
                RouteUpdate::Announce(prefix, next_hop) => {
                    let flap = self.recent.take(&prefix);
                    if prefix.is_empty() {
                        // Mirrors `announce`: `len` tracks whether the
                        // slot was empty, independent of the flap tag.
                        let restored = self.default_route.is_none();
                        let kind = if flap {
                            UpdateKind::RouteFlap
                        } else if restored {
                            UpdateKind::AddCollapsed
                        } else {
                            UpdateKind::NextHopChange
                        };
                        if restored {
                            self.len += 1;
                        }
                        self.default_route = Some(next_hop);
                        kinds[oi] = Some(kind);
                        continue;
                    }
                    let ci = self.plan.cell_for(prefix.len()).expect("validated above");
                    let base = self.plan.cells()[ci].base;
                    let collapsed = prefix.truncate(base).bits();
                    let depth = prefix.len() - base;
                    let suffix = prefix.suffix_below(base);
                    let res = Arc::make_mut(&mut self.cells[ci])
                        .announce_batched(collapsed, depth, suffix, next_hop)?;
                    if res.grew {
                        // The capacity-doubling rebuild re-encoded every
                        // live group of the cell: earlier deferred inserts
                        // of this cell are resolved re-setups now (and
                        // their recorded slots are stale — drop them).
                        pending.retain(|p| {
                            if p.ci == ci {
                                kinds[p.op] = Some(UpdateKind::Resetup);
                                report.resetups_saved += 1;
                                false
                            } else {
                                true
                            }
                        });
                    }
                    match res.step {
                        BatchStep::Applied(outcome) => {
                            let kind = match outcome {
                                AnnounceOutcome::DirtyRestore => UpdateKind::RouteFlap,
                                AnnounceOutcome::NextHopOnly => {
                                    if flap {
                                        UpdateKind::RouteFlap
                                    } else {
                                        UpdateKind::NextHopChange
                                    }
                                }
                                AnnounceOutcome::Collapsed => {
                                    if flap {
                                        UpdateKind::RouteFlap
                                    } else {
                                        UpdateKind::AddCollapsed
                                    }
                                }
                                AnnounceOutcome::Singleton => UpdateKind::AddSingleton,
                                AnnounceOutcome::Resetup => UpdateKind::Resetup,
                                AnnounceOutcome::DegradedSpill => UpdateKind::DegradedSpill,
                            };
                            if !matches!(outcome, AnnounceOutcome::NextHopOnly) {
                                self.len += 1;
                            }
                            kinds[oi] = Some(kind);
                        }
                        BatchStep::Pending(slot) => {
                            // Counted now; rolled back below if the unit
                            // degrades and the TCAM has no room.
                            self.len += 1;
                            pending.push(PendingInsert {
                                op: oi,
                                ci,
                                collapsed,
                                slot,
                            });
                        }
                    }
                }
                RouteUpdate::Withdraw(prefix) => {
                    let existed = if prefix.is_empty() {
                        self.default_route.take().is_some()
                    } else {
                        let ci = self.plan.cell_for(prefix.len()).expect("validated above");
                        let base = self.plan.cells()[ci].base;
                        Arc::make_mut(&mut self.cells[ci]).withdraw(
                            prefix.truncate(base).bits(),
                            prefix.len() - base,
                            prefix.suffix_below(base),
                        )
                    };
                    if existed {
                        self.len -= 1;
                        self.recent.record(prefix);
                    }
                    kinds[oi] = Some(UpdateKind::Withdraw);
                }
            }
        }

        // Rebuild phase: group the surviving deferred inserts into
        // (cell, partition) units — partition membership is selector-
        // stable, so the grouping is commit-order independent — and run
        // every unit's gather + candidate build concurrently against the
        // shared pre-commit state. Commits are sequential in unit order
        // (build-then-commit: a failed unit leaves its partition exactly
        // as it was).
        if !pending.is_empty() {
            let mut grouped: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
            for (pi, p) in pending.iter().enumerate() {
                let part = self.cells[p.ci].partition_of(p.collapsed);
                grouped.entry((p.ci, part)).or_default().push(pi);
            }
            report.parallel_resetups = grouped.len();
            report.resetups_saved += (pending.len() - grouped.len()) as u64;
            // Fault decisions are occurrence-counted in call order, so
            // the SETUP_FAIL draws happen sequentially (unit order) up
            // front; the parallel builders consume fixed decisions.
            type Unit = ((usize, usize), Vec<usize>, bool);
            let units: Vec<Unit> = grouped
                .into_iter()
                .map(|(key, pis)| (key, pis, faultpoint::fire(faultpoint::SETUP_FAIL)))
                .collect();
            let threads = resolve_threads(self.config.build_threads);
            let cells = &self.cells;
            type Built = Result<(PartitionResetupPlan, Option<RebuildCandidate>), ChiselError>;
            let built: Vec<Built> = parallel_map(threads, &units, |_, &((ci, part), _, failed)| {
                let rplan = cells[ci].plan_partition_resetup(part);
                let candidate = if failed {
                    None
                } else {
                    Some(cells[ci].build_resetup_candidate(&rplan)?)
                };
                Ok((rplan, candidate))
            });
            for (((ci, _), pis, _), built) in units.iter().zip(built) {
                let (rplan, candidate) = built?;
                let unit_pending: Vec<(u128, u32)> = pis
                    .iter()
                    .map(|&pi| (pending[pi].collapsed, pending[pi].slot))
                    .collect();
                let (committed, parked) = Arc::make_mut(&mut self.cells[*ci])
                    .commit_partition_resetup(&rplan, candidate, &unit_pending);
                for (j, &pi) in pis.iter().enumerate() {
                    if committed {
                        kinds[pending[pi].op] = Some(UpdateKind::Resetup);
                    } else if j < parked {
                        kinds[pending[pi].op] = Some(UpdateKind::DegradedSpill);
                    } else {
                        // Rolled back: undo the provisional add and report
                        // the op's raw events as rejected. The collapsed
                        // group was new this window, so any absorbed
                        // same-prefix withdraws were no-ops — excluding
                        // the whole absorbed set keeps the accepted
                        // sequence equivalent to what was applied.
                        self.len -= 1;
                        report
                            .rejected_events
                            .extend(absorbed_raw[pending[pi].op].iter().copied());
                    }
                }
            }
        }

        // Models the control plane dying mid-window: the bare engine is
        // torn, the snapshot path discards the clone — so a published
        // generation always reflects a whole window (atomicity).
        if faultpoint::fire(faultpoint::PARTIAL_UPDATE) {
            return Err(ChiselError::FaultInjected {
                site: faultpoint::PARTIAL_UPDATE,
            });
        }

        for kind in kinds.iter().flatten() {
            self.stats.record(*kind);
            report.kinds.record(*kind);
        }
        report.applied_ops = report.kinds.total();
        report.rejected_events.sort_unstable();
        self.batch.batches_published += 1;
        self.batch.events_ingested += report.ingested as u64;
        self.batch.events_coalesced += report.coalesced as u64;
        self.batch.events_rejected += report.rejected_events.len() as u64;
        self.batch.resetups_saved += report.resetups_saved;
        self.batch.parallel_resetups += report.parallel_resetups as u64;
        Ok(report)
    }

    /// Cumulative batched-update counters ([`ChiselLpm::apply_batch`]).
    pub fn batch_stats(&self) -> BatchStats {
        self.batch
    }

    /// Update-classification tallies since build.
    pub fn update_stats(&self) -> UpdateStats {
        self.stats
    }

    /// Resets update tallies (e.g. between trace replays).
    pub fn reset_update_stats(&mut self) {
        self.stats = UpdateStats::default();
    }

    /// Total spillover TCAM occupancy across sub-cells.
    pub fn spill_len(&self) -> usize {
        self.cells.iter().map(|c| c.spill_len()).sum()
    }

    /// Total partition re-setups performed across sub-cells.
    pub fn resetups(&self) -> u64 {
        self.cells.iter().map(|c| c.resetups()).sum()
    }

    /// A consolidated health snapshot: update tallies, re-setup recovery
    /// counters, degraded-mode status and spillover occupancy, merged
    /// across all sub-cells.
    pub fn engine_stats(&self) -> EngineStats {
        let mut recovery = RecoveryStats::default();
        let mut parked = 0usize;
        for cell in self.cells.iter() {
            recovery.merge(&cell.recovery());
            parked += cell.degraded_len();
        }
        EngineStats {
            updates: self.stats,
            batch: self.batch,
            recovery,
            degraded: if parked > 0 {
                DegradedMode::Degraded {
                    parked_keys: parked,
                }
            } else {
                DegradedMode::Normal
            },
            routes: self.len,
            groups: self.groups(),
            spill_len: self.spill_len(),
            spill_capacity: self.config.spill_capacity * self.cells.len(),
            resetups: self.resetups(),
        }
    }

    /// Actual on-chip storage of this engine instance, summed over
    /// sub-cells with their real geometries.
    pub fn storage(&self) -> StorageBreakdown {
        use chisel_prefix::bits::addr_bits;
        let mut s = StorageBreakdown::default();
        for cell in &self.cells {
            let cap = cell.capacity();
            // Measured off the packed arena: `total_m` entries of
            // `w = ceil(log2(capacity))` bits each.
            s.index_bits += cell.index_logical_bits();
            // Filter stores the collapsed key (base bits) + dirty bit; the
            // hardware provisions full key width, which we follow.
            s.filter_bits += cap as u64 * (self.config.family.width() as u64 + 1);
            let result_ptr = addr_bits(2 * cell.result_high_water().max(1)) as u64;
            s.bitvec_bits += cap as u64 * (cell.range().leaves() as u64 + result_ptr);
        }
        s
    }

    /// Number of live collapsed groups across sub-cells.
    pub fn groups(&self) -> usize {
        self.cells.iter().map(|c| c.groups()).sum()
    }

    /// Per-sub-cell packed Index Table geometry: `(locations, entry width
    /// w, Filter/Bit-vector capacity)` — the quantities of the Section 5
    /// storage model, where `w = ceil(log2(capacity))`.
    pub fn index_geometry(&self) -> Vec<(usize, u32, usize)> {
        self.cells
            .iter()
            .map(|c| (c.index_locations(), c.index_value_bits(), c.capacity()))
            .collect()
    }

    /// Physical bit-packed Index Table storage across sub-cells: whole
    /// 64-bit backing words (cache-line aligned), as opposed to the
    /// logical `m * w` figure reported by [`ChiselLpm::storage`].
    pub fn index_arena_bits(&self) -> u64 {
        self.cells.iter().map(|c| c.index_arena_bits()).sum()
    }

    /// Exports every table's raw memory words as a [`crate::HardwareImage`]
    /// — the payload the software shadow loads into the hardware engine
    /// (Section 4.4).
    pub fn export_image(&self) -> crate::HardwareImage {
        crate::HardwareImage {
            family: self.config.family,
            cells: self.cells.iter().map(|c| c.export_image()).collect(),
            default_route: self.default_route,
        }
    }

    /// Re-walks every inserted prefix through all four tables and checks
    /// the structural invariants the paper's correctness rests on — see
    /// [`crate::verify`] for the catalogue. Returns a report instead of
    /// panicking so callers (`chisel-router check`, the test suite) can
    /// show every violation at once.
    pub fn verify(&self) -> crate::verify::VerifyReport {
        let mut report = crate::verify::VerifyReport {
            cells: self.cells.len(),
            ..Default::default()
        };
        for (ci, cell) in self.cells.iter().enumerate() {
            cell.verify(ci, &mut report);
        }
        if self.default_route.is_some() {
            report.routes += 1;
        }
        // Engine-level reconciliation: the route enumeration used by
        // serialization must agree with the maintained length counter.
        let counted = self.iter_routes().count();
        if counted != self.len {
            report.push(
                None,
                None,
                "route-count",
                format!("enumerated {counted} routes but len() is {}", self.len),
            );
        }
        report
    }

    /// Enumerates every routable prefix with its next hop (including the
    /// default route), in no particular order. Used for verification.
    pub fn iter_routes(&self) -> impl Iterator<Item = RouteEntry> + '_ {
        let family = self.config.family;
        let default = self
            .default_route
            .map(|nh| RouteEntry::new(Prefix::default_route(family), nh));
        self.cells
            .iter()
            .flat_map(move |cell| {
                let base = cell.range().base;
                cell.iter_routes()
                    .map(move |(collapsed, depth, suffix, nh)| {
                        let p = Prefix::new(family, collapsed, base)
                            .expect("stored collapsed key is valid")
                            .extend(suffix, depth);
                        RouteEntry::new(p, nh)
                    })
            })
            .chain(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chisel_prefix::oracle::OracleLpm;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn k(s: &str) -> Key {
        s.parse().unwrap()
    }

    fn nh(i: u32) -> NextHop {
        NextHop::new(i)
    }

    fn small_table() -> RoutingTable {
        let mut t = RoutingTable::new_v4();
        t.insert(p("0.0.0.0/0"), nh(99));
        t.insert(p("10.0.0.0/8"), nh(1));
        t.insert(p("10.1.0.0/16"), nh(2));
        t.insert(p("10.1.2.0/24"), nh(3));
        t.insert(p("10.1.2.3/32"), nh(4));
        t.insert(p("192.168.0.0/16"), nh(5));
        t.insert(p("192.168.1.0/24"), nh(6));
        t
    }

    #[test]
    fn lookup_matches_oracle_on_small_table() {
        let t = small_table();
        let engine = ChiselLpm::build(&t, ChiselConfig::ipv4()).unwrap();
        let oracle = OracleLpm::from_table(&t);
        for key in [
            "10.1.2.3",
            "10.1.2.4",
            "10.1.3.1",
            "10.200.0.1",
            "192.168.1.77",
            "192.168.2.77",
            "8.8.8.8",
        ] {
            assert_eq!(engine.lookup(k(key)), oracle.lookup(k(key)), "key {key}");
        }
        assert_eq!(engine.len(), 7);
    }

    #[test]
    fn empty_table_builds() {
        let engine = ChiselLpm::build(&RoutingTable::new_v4(), ChiselConfig::ipv4()).unwrap();
        assert!(engine.is_empty());
        assert_eq!(engine.lookup(k("1.2.3.4")), None);
    }

    #[test]
    fn announce_then_lookup() {
        let mut engine = ChiselLpm::build(&RoutingTable::new_v4(), ChiselConfig::ipv4()).unwrap();
        engine.announce(p("10.0.0.0/8"), nh(1)).unwrap();
        engine.announce(p("10.1.0.0/16"), nh(2)).unwrap();
        assert_eq!(engine.lookup(k("10.1.0.1")), Some(nh(2)));
        assert_eq!(engine.lookup(k("10.2.0.1")), Some(nh(1)));
        assert_eq!(engine.len(), 2);
    }

    #[test]
    fn withdraw_then_lookup() {
        let mut engine = ChiselLpm::build(&small_table(), ChiselConfig::ipv4()).unwrap();
        engine.withdraw(p("10.1.2.0/24")).unwrap();
        assert_eq!(engine.lookup(k("10.1.2.200")), Some(nh(2)));
        engine.withdraw(p("10.1.0.0/16")).unwrap();
        assert_eq!(engine.lookup(k("10.1.2.200")), Some(nh(1)));
        assert_eq!(engine.len(), 5);
    }

    #[test]
    fn withdraw_absent_is_noop() {
        let mut engine = ChiselLpm::build(&small_table(), ChiselConfig::ipv4()).unwrap();
        let before = engine.len();
        engine.withdraw(p("99.0.0.0/8")).unwrap();
        assert_eq!(engine.len(), before);
    }

    #[test]
    fn update_classification() {
        let mut engine = ChiselLpm::build(&small_table(), ChiselConfig::ipv4()).unwrap();
        // Next-hop change on an existing prefix.
        assert_eq!(
            engine.announce(p("10.1.0.0/16"), nh(42)).unwrap(),
            UpdateKind::NextHopChange
        );
        assert_eq!(engine.lookup(k("10.1.9.9")), Some(nh(42)));
        // Add a prefix that collapses into the existing 10.1.2.0/24 group.
        assert_eq!(
            engine.announce(p("10.1.2.128/25"), nh(43)).unwrap(),
            UpdateKind::AddCollapsed
        );
        assert_eq!(engine.lookup(k("10.1.2.200")), Some(nh(43)));
        assert_eq!(engine.lookup(k("10.1.2.100")), Some(nh(3)));
        // Withdraw then re-announce: classified as a route flap.
        engine.withdraw(p("10.1.2.128/25")).unwrap();
        assert_eq!(
            engine.announce(p("10.1.2.128/25"), nh(44)).unwrap(),
            UpdateKind::RouteFlap
        );
        assert_eq!(engine.lookup(k("10.1.2.200")), Some(nh(44)));
    }

    #[test]
    fn dirty_bit_flap_restore() {
        let mut engine = ChiselLpm::build(&small_table(), ChiselConfig::ipv4()).unwrap();
        // 192.168.1.0/24 is alone in its group; withdrawing it empties the
        // group (dirty), and the re-announce must restore via the dirty bit.
        engine.withdraw(p("192.168.1.0/24")).unwrap();
        assert_eq!(engine.lookup(k("192.168.1.1")), Some(nh(5)));
        assert_eq!(
            engine.announce(p("192.168.1.0/24"), nh(7)).unwrap(),
            UpdateKind::RouteFlap
        );
        assert_eq!(engine.lookup(k("192.168.1.1")), Some(nh(7)));
    }

    #[test]
    fn default_route_updates() {
        let mut engine = ChiselLpm::build(&RoutingTable::new_v4(), ChiselConfig::ipv4()).unwrap();
        assert_eq!(engine.lookup(k("5.5.5.5")), None);
        assert_eq!(
            engine.announce(p("0.0.0.0/0"), nh(9)).unwrap(),
            UpdateKind::AddCollapsed
        );
        assert_eq!(engine.lookup(k("5.5.5.5")), Some(nh(9)));
        engine.withdraw(p("0.0.0.0/0")).unwrap();
        assert_eq!(engine.lookup(k("5.5.5.5")), None);
    }

    #[test]
    fn default_route_flap_keeps_len_consistent() {
        // A withdraw/re-announce flap of the default route must restore
        // the route count: the flap *classification* (RouteFlap) must not
        // suppress the `len` increment the restore implies.
        let mut engine = ChiselLpm::build(&RoutingTable::new_v4(), ChiselConfig::ipv4()).unwrap();
        engine.announce(p("0.0.0.0/0"), nh(9)).unwrap();
        assert_eq!(engine.len(), 1);
        engine.withdraw(p("0.0.0.0/0")).unwrap();
        assert_eq!(engine.len(), 0);
        assert_eq!(
            engine.announce(p("0.0.0.0/0"), nh(7)).unwrap(),
            UpdateKind::RouteFlap
        );
        assert_eq!(engine.len(), 1);
        assert!(engine.verify().is_ok());

        // Same flap split across two batch windows (so coalescing cannot
        // cancel it) through the batched path.
        let mut batched = ChiselLpm::build(&RoutingTable::new_v4(), ChiselConfig::ipv4()).unwrap();
        batched
            .apply_batch(&[RouteUpdate::Announce(p("0.0.0.0/0"), nh(9))])
            .unwrap();
        batched
            .apply_batch(&[RouteUpdate::Withdraw(p("0.0.0.0/0"))])
            .unwrap();
        batched
            .apply_batch(&[RouteUpdate::Announce(p("0.0.0.0/0"), nh(7))])
            .unwrap();
        assert_eq!(batched.len(), 1);
        assert!(batched.verify().is_ok());
    }

    #[test]
    fn iter_routes_roundtrip() {
        let t = small_table();
        let engine = ChiselLpm::build(&t, ChiselConfig::ipv4()).unwrap();
        let mut recovered = RoutingTable::new_v4();
        recovered.extend(engine.iter_routes());
        assert_eq!(recovered, t);
    }

    #[test]
    fn ipv6_basic() {
        let mut t = RoutingTable::new_v6();
        t.insert(p("2001:db8::/32"), nh(1));
        t.insert(p("2001:db8:1::/48"), nh(2));
        t.insert(p("2001:db8:1:2::/64"), nh(3));
        let engine = ChiselLpm::build(&t, ChiselConfig::ipv6()).unwrap();
        assert_eq!(engine.lookup(k("2001:db8:1:2::99")), Some(nh(3)));
        assert_eq!(engine.lookup(k("2001:db8:1:3::99")), Some(nh(2)));
        assert_eq!(engine.lookup(k("2001:db8:ff::1")), Some(nh(1)));
        assert_eq!(engine.lookup(k("2002::1")), None);
    }

    #[test]
    fn family_mismatch_rejected() {
        let engine = ChiselLpm::build(&RoutingTable::new_v4(), ChiselConfig::ipv4()).unwrap();
        let mut e2 = engine.clone();
        assert_eq!(
            e2.announce(p("2001:db8::/32"), nh(1)).unwrap_err(),
            ChiselError::FamilyMismatch
        );
        assert!(matches!(
            ChiselLpm::build(&RoutingTable::new_v6(), ChiselConfig::ipv4()),
            Err(ChiselError::FamilyMismatch)
        ));
    }

    #[test]
    fn lookup_trace_depth() {
        let engine = ChiselLpm::build(&small_table(), ChiselConfig::ipv4()).unwrap();
        let mut trace = LookupTrace::default();
        let _ = engine.lookup_traced(k("10.1.2.3"), &mut trace);
        assert!(trace.result_reads == 1, "exactly one off-chip access");
        assert!(trace.index_reads >= 1);
    }

    #[test]
    fn storage_is_nonzero_and_scales() {
        let engine = ChiselLpm::build(&small_table(), ChiselConfig::ipv4()).unwrap();
        let s = engine.storage();
        assert!(s.index_bits > 0 && s.filter_bits > 0 && s.bitvec_bits > 0);
    }

    #[test]
    fn storage_matches_section5_packed_model() {
        use chisel_prefix::bits::addr_bits;
        // The flat layout is the exact Section 5 model; the blocked
        // default adds per-line padding, covered by the test below.
        let engine =
            ChiselLpm::build(&small_table(), ChiselConfig::ipv4().blocked_index(false)).unwrap();
        let geometry = engine.index_geometry();
        // Section 5 storage model: every Index Table entry is a packed
        // w = ceil(log2(table depth)) bit pointer, and the reported
        // storage is exactly m * w per sub-cell.
        let mut model_bits = 0u64;
        for &(m, w, capacity) in &geometry {
            assert_eq!(w, addr_bits(capacity), "w must be ceil(log2(depth))");
            model_bits += m as u64 * w as u64;
        }
        assert_eq!(engine.storage().index_bits, model_bits);
        // Packing must beat the full-width Vec<u32> layout it replaced.
        let unpacked: u64 = geometry.iter().map(|&(m, _, _)| m as u64 * 32).sum();
        assert!(model_bits < unpacked, "{model_bits} !< {unpacked}");
        // The physical arena rounds up to whole 64-bit words per
        // partition — bounded overhead, never more.
        let partitions: u64 = geometry.len() as u64 * engine.config().partitions as u64;
        let arena = engine.index_arena_bits();
        assert!(arena >= model_bits);
        assert!(arena - model_bits < 64 * partitions);
    }

    #[test]
    fn blocked_arena_rounds_to_whole_lines() {
        use chisel_prefix::bits::addr_bits;
        let engine = ChiselLpm::build(&small_table(), ChiselConfig::ipv4()).unwrap();
        let geometry = engine.index_geometry();
        // Blocking rounds m itself up to whole cache-line blocks, so the
        // logical m * w model still prices every entry exactly...
        let mut model_bits = 0u64;
        let mut line_bits = 0u64;
        for &(m, w, capacity) in &geometry {
            assert_eq!(w, addr_bits(capacity), "w must be ceil(log2(depth))");
            let epl = 512 / w as usize;
            assert_eq!(m % epl, 0, "blocked m must be whole 64-byte lines");
            model_bits += m as u64 * w as u64;
            line_bits += (m / epl) as u64 * 512;
        }
        assert_eq!(engine.storage().index_bits, model_bits);
        // ...and the physical arena is exactly whole 64-byte lines: the
        // per-line pad of 512 - epl * w (< w) bits is the storage price
        // of the one-cache-line-per-lookup guarantee.
        assert_eq!(engine.index_arena_bits(), line_bits);
    }

    #[test]
    fn build_threads_do_not_change_the_engine_image() {
        let t = small_table();
        let baseline = ChiselLpm::build(&t, ChiselConfig::ipv4().build_threads(1))
            .unwrap()
            .export_image()
            .to_bytes();
        for threads in [2usize, 8] {
            let image = ChiselLpm::build(&t, ChiselConfig::ipv4().build_threads(threads))
                .unwrap()
                .export_image()
                .to_bytes();
            assert_eq!(image, baseline, "image diverged at {threads} threads");
        }
    }
}
