//! The engine/image invariant verifier: re-walks every inserted prefix
//! through all four tables and reports each broken invariant instead of
//! silently mis-routing.
//!
//! Chisel's correctness argument is a chain of structural invariants,
//! each tied to a paper claim:
//!
//! - **Collision-freeness** (Section 4.1): the Bloomier Index Table maps
//!   distinct collapsed keys to *distinct* Filter Table rows — two live
//!   keys may never share a slot, and replaying the k-segment XOR of a
//!   stored key must land exactly on its row (`duplicate-key`,
//!   `data-path-binding`, `index-replay`).
//! - **Pointer ranges** (Section 4.2): every decoded Index Table pointer
//!   for an encoded key lies in `[0, n)` where `n` is the Filter Table
//!   depth, and entries are packed at exactly `w = ceil(log2 n)` bits
//!   (`index-pointer-range`, `index-entry-width`).
//! - **Rank consistency** (Section 4.3): a group's bit-vector popcount
//!   equals its Result Table block occupancy, every set leaf's
//!   `ptr + rank - 1` read returns the next hop the group's shadow
//!   resolves for that leaf, and blocks never overlap or escape the
//!   table (`popcount-mismatch`, `next-hop-mismatch`, `block-overlap`,
//!   `result-out-of-bounds`).
//! - **Update hygiene** (Section 4.4): dirty rows are fully drained
//!   (empty shadow, zero vector, released block), spillover TCAM entries
//!   bind their key to the slot that actually stores it, and the free
//!   slot accounting matches the live row count (`stale-*`,
//!   `spill-binding`, `slot-accounting`, `live-group-count`).
//!
//! Two entry points cover the two halves of the deployment model:
//! [`crate::ChiselLpm::verify`] checks the software shadow (it can see
//! shadows and block capacities), while [`verify_image`] checks a raw
//! [`HardwareImage`] using nothing but the exported memory words — the
//! view the hardware engine actually loads. `chisel-router check <table>`
//! runs both plus a route-set roundtrip; `debug_assert!` hooks re-verify
//! the touched slot after every incremental update.

use std::collections::HashMap;
use std::fmt;

use chisel_prefix::bits::addr_bits;

use crate::image::HardwareImage;

/// One broken invariant, with enough context to locate the bad word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Sub-cell index, or `None` for engine-wide checks.
    pub cell: Option<usize>,
    /// Filter/Bit-vector slot, when the check is per-slot.
    pub slot: Option<u32>,
    /// Stable kebab-case name of the violated check.
    pub check: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.cell, self.slot) {
            (Some(c), Some(s)) => write!(f, "cell {c} slot {s}: {}: {}", self.check, self.message),
            (Some(c), None) => write!(f, "cell {c}: {}: {}", self.check, self.message),
            _ => write!(f, "engine: {}: {}", self.check, self.message),
        }
    }
}

/// Outcome of a verification pass: coverage counters plus every
/// violation found (the verifier never stops at the first one).
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Sub-cells walked.
    pub cells: usize,
    /// Live (valid, non-dirty) Filter Table rows re-walked.
    pub live_slots: usize,
    /// Original prefixes re-walked through the data path.
    pub routes: usize,
    /// Every invariant violation found.
    pub violations: Vec<Violation>,
}

impl VerifyReport {
    /// Whether every invariant held.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    pub(crate) fn push(
        &mut self,
        cell: Option<usize>,
        slot: Option<u32>,
        check: &'static str,
        message: String,
    ) {
        self.violations.push(Violation {
            cell,
            slot,
            check,
            message,
        });
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "verified {} routes across {} live groups in {} sub-cells: {} violation(s)",
            self.routes,
            self.live_slots,
            self.cells,
            self.violations.len()
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// Verifies a raw [`HardwareImage`] using only the exported memory words
/// — the exact view the hardware engine loads (Section 4.4).
///
/// The image has no shadows, so semantic next-hop checks stay with
/// [`crate::ChiselLpm::verify`]; this pass proves the *structural*
/// claims the hardware relies on: collision-free key→row binding via
/// data-path replay, `w = ceil(log2 n)` packing, result pointers in
/// bounds over written words, and drained dirty/invalid rows.
pub fn verify_image(image: &HardwareImage) -> VerifyReport {
    let mut report = VerifyReport {
        cells: image.cells.len(),
        ..VerifyReport::default()
    };
    for (ci, cell) in image.cells.iter().enumerate() {
        let cv = Some(ci);
        let n = cell.filter.len();
        if cell.bitvec.len() != n {
            report.push(
                cv,
                None,
                "table-depth-mismatch",
                format!("filter depth {n} != bit-vector depth {}", cell.bitvec.len()),
            );
            continue;
        }
        // Section 5 storage model: every partition packs entries at
        // exactly w = ceil(log2 n) bits.
        let w = addr_bits(n);
        for (pi, part) in cell.index_parts.iter().enumerate() {
            if part.words.value_bits() != w {
                report.push(
                    cv,
                    None,
                    "index-entry-width",
                    format!(
                        "partition {pi} packs {} bits/entry, expected ceil(log2 {n}) = {w}",
                        part.words.value_bits()
                    ),
                );
            }
        }
        let mut keys: HashMap<u128, u32> = HashMap::new();
        for slot in 0..n as u32 {
            let sv = Some(slot);
            let fw = &cell.filter[slot as usize];
            let bw = &cell.bitvec[slot as usize];
            if fw.dirty && !fw.valid {
                report.push(
                    cv,
                    sv,
                    "dirty-invalid",
                    "dirty bit set on an invalid row".into(),
                );
            }
            if fw.valid {
                if let Some(prev) = keys.insert(fw.key, slot) {
                    report.push(
                        cv,
                        sv,
                        "duplicate-key",
                        format!("key {:#x} also stored at slot {prev} (collision)", fw.key),
                    );
                }
                // Replay the Figure 6 front end: spillover TCAM first,
                // then the partitioned k-segment XOR. The decoded pointer
                // must come back to this very row.
                let replayed = match cell.spill.iter().find(|&&(k, _)| k == fw.key) {
                    Some(&(_, s)) => s,
                    None => {
                        let d = cell.index_parts.len();
                        let digest = cell.selector.digest(fw.key);
                        let part = &cell.index_parts[cell.selector.hash_one_digest(0, digest, d)];
                        // Layout-dispatching shared datapath: flat probes
                        // or one blocked line, same as the live engine.
                        chisel_bloomier::index_xor_lookup(&part.family, &part.words, digest) as u32
                    }
                };
                if replayed != slot {
                    report.push(
                        cv,
                        sv,
                        "index-replay",
                        format!("key {:#x} decodes to pointer {replayed}", fw.key),
                    );
                }
            }
            let ones = bw.vector.count_ones();
            if fw.valid && !fw.dirty {
                report.live_slots += 1;
                if ones == 0 {
                    report.push(cv, sv, "empty-live-group", "live row covers no leaf".into());
                }
            } else if ones != 0 {
                report.push(
                    cv,
                    sv,
                    "stale-vector",
                    format!("{ones} leaf bit(s) set on a non-live row"),
                );
            }
            match bw.pointer {
                Some(ptr) => {
                    if !fw.valid || fw.dirty {
                        report.push(
                            cv,
                            sv,
                            "stale-block",
                            "result pointer on a non-live row".into(),
                        );
                    } else if ptr as usize + ones > cell.result.len() {
                        report.push(
                            cv,
                            sv,
                            "result-out-of-bounds",
                            format!(
                                "block [{ptr}, {ptr}+{ones}) exceeds result table of {}",
                                cell.result.len()
                            ),
                        );
                    } else {
                        // The compacted occupancy ptr..ptr+ones must all
                        // be written next hops (unused slots carry the
                        // u32::MAX fill).
                        for off in 0..ones {
                            if cell.result[ptr as usize + off] == u32::MAX {
                                report.push(
                                    cv,
                                    sv,
                                    "unwritten-result-entry",
                                    format!("rank {off} reads the unwritten fill"),
                                );
                            }
                        }
                    }
                }
                None => {
                    if ones > 0 {
                        report.push(
                            cv,
                            sv,
                            "missing-block",
                            format!("{ones} leaf bit(s) set but no result block"),
                        );
                    }
                }
            }
        }
        let mut spill_keys: HashMap<u128, u32> = HashMap::new();
        for &(k, s) in &cell.spill {
            if let Some(prev) = spill_keys.insert(k, s) {
                report.push(
                    cv,
                    Some(s),
                    "duplicate-spill-key",
                    format!("key {k:#x} also spilled to slot {prev}"),
                );
            }
            if s as usize >= n {
                report.push(
                    cv,
                    Some(s),
                    "spill-slot-range",
                    format!("spill slot {s} outside filter depth {n}"),
                );
            } else {
                let fw = &cell.filter[s as usize];
                if !fw.valid || fw.key != k {
                    report.push(
                        cv,
                        Some(s),
                        "spill-binding",
                        format!("spilled key {k:#x} not stored at its slot"),
                    );
                }
            }
        }
    }
    report
}
