//! The Bit-vector Table entry: a `2^stride`-bit leaf vector with rank
//! support (paper Section 4.3.1).
//!
//! Each collapsed prefix owns one leaf vector. Bit `i` is set when some
//! original prefix in the group covers leaf `i` of the collapsed subtree;
//! the *rank* (number of ones up to and including `i`) added to the
//! group's Result Table pointer addresses the leaf's next hop. Hardware
//! implements rank as a single-cycle popcount tree ("Count 1's" in
//! Figure 6); here the same O(1) behaviour comes from per-word prefix
//! popcounts maintained on update, so a lookup never loops over the
//! vector no matter the stride.

use std::sync::Arc;

/// The heap payload of a [`LeafVector`], `Arc`-shared so that cloning a
/// vector — which happens 64 entries at a time whenever a snapshot write
/// copies a Bit-vector Table chunk — is a pointer bump; only the one
/// vector a mutator touches pays for unshared words.
#[derive(Debug, Clone, PartialEq, Eq)]
struct LeafBits {
    words: Vec<u64>,
    /// `sums[w]` = number of ones in `words[..w]` — the superblock prefix
    /// popcounts behind O(1) rank. Updates maintain it incrementally;
    /// lookups never recompute it.
    sums: Vec<u32>,
}

/// A fixed-width bit-vector with O(1) rank, as stored in the Bit-vector
/// Table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeafVector {
    bits: Arc<LeafBits>,
    leaves: usize,
}

impl LeafVector {
    /// Creates an all-zero vector with `2^stride` leaves.
    ///
    /// # Panics
    ///
    /// Panics if `stride > 24` (a 16M-bit vector is far past any sane
    /// hardware provisioning; the paper uses strides around 4).
    pub fn new(stride: u8) -> Self {
        // ASSERT-OK: documented `# Panics` contract on the cold
        // construction path.
        assert!(stride <= 24, "stride {stride} unreasonably large");
        let leaves = 1usize << stride;
        let nwords = leaves.div_ceil(64);
        LeafVector {
            bits: Arc::new(LeafBits {
                words: vec![0; nwords],
                sums: vec![0; nwords],
            }),
            leaves,
        }
    }

    /// Reconstructs a vector from its raw hardware words (the
    /// [`LeafVector::words`] serialization), rebuilding the rank prefix
    /// sums. Returns `None` — instead of panicking — when the words do not
    /// describe a valid `2^stride`-leaf vector: wrong word count, a
    /// stride past the provisioning bound, or set bits beyond the leaf
    /// count. The image loader uses this to reject corrupt bytes.
    pub fn from_words(stride: u8, words: &[u64]) -> Option<Self> {
        if stride > 24 {
            return None;
        }
        let leaves = 1usize << stride;
        let nwords = leaves.div_ceil(64);
        if words.len() != nwords {
            return None;
        }
        let tail_bits = leaves % 64;
        if tail_bits != 0 && words[nwords - 1] >> tail_bits != 0 {
            return None;
        }
        let mut sums = vec![0u32; nwords];
        for w in 1..nwords {
            sums[w] = sums[w - 1] + words[w - 1].count_ones();
        }
        Some(LeafVector {
            bits: Arc::new(LeafBits {
                words: words.to_vec(),
                sums,
            }),
            leaves,
        })
    }

    /// Number of leaves (bits).
    #[inline]
    pub fn leaves(&self) -> usize {
        self.leaves
    }

    /// Reads leaf `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= leaves`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        // ASSERT-OK: documented `# Panics` contract; `leaves` is not a
        // word multiple, so slice indexing alone would let the rounded-
        // up tail read garbage in release instead of failing.
        assert!(i < self.leaves, "leaf {i} out of range {}", self.leaves);
        self.bits.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets leaf `i` to `value`, maintaining the rank prefix sums.
    ///
    /// # Panics
    ///
    /// Panics if `i >= leaves`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        // ASSERT-OK: documented `# Panics` contract; same rounded-up
        // tail hazard as `get`.
        assert!(i < self.leaves, "leaf {i} out of range {}", self.leaves);
        let w = i / 64;
        let mask = 1u64 << (i % 64);
        let was = self.bits.words[w] & mask != 0;
        if was == value {
            return;
        }
        let bits = Arc::make_mut(&mut self.bits);
        if value {
            bits.words[w] |= mask;
            for s in &mut bits.sums[w + 1..] {
                *s += 1;
            }
        } else {
            bits.words[w] &= !mask;
            for s in &mut bits.sums[w + 1..] {
                *s -= 1;
            }
        }
    }

    /// Number of ones in leaves `0..=i` — the hardware "Count 1's" unit.
    /// One prefix-sum read plus one masked popcount, regardless of stride.
    ///
    /// # Panics
    ///
    /// Panics if `i >= leaves`.
    #[inline]
    pub fn rank(&self, i: usize) -> usize {
        // ASSERT-OK: documented `# Panics` contract; same rounded-up
        // tail hazard as `get`.
        assert!(i < self.leaves);
        let w = i / 64;
        let partial_bits = (i % 64) + 1;
        let masked = self.bits.words[w] & (u64::MAX >> (64 - partial_bits));
        self.bits.sums[w] as usize + masked.count_ones() as usize
    }

    /// Total number of ones — the size of the group's Result Table block.
    #[inline]
    pub fn count_ones(&self) -> usize {
        // The last prefix sum covers all but the final word.
        let last = self.bits.words.len() - 1;
        self.bits.sums[last] as usize + self.bits.words[last].count_ones() as usize
    }

    /// Whether every leaf is zero (the group is empty and its collapsed
    /// prefix may be marked dirty).
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.bits.words.iter().all(|&w| w == 0)
    }

    /// Clears every leaf.
    pub fn clear(&mut self) {
        if self.is_zero() {
            return;
        }
        let bits = Arc::make_mut(&mut self.bits);
        bits.words.iter_mut().for_each(|w| *w = 0);
        bits.sums.iter_mut().for_each(|s| *s = 0);
    }

    /// Storage footprint in bits (the Bit-vector Table provisions exactly
    /// `2^stride` bits per entry; the prefix sums model the popcount tree
    /// wiring, not stored table bits).
    #[inline]
    pub fn storage_bits(&self) -> usize {
        self.leaves
    }

    /// The raw backing words (LSB-first leaves) — what a hardware image
    /// serializes.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.bits.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zero() {
        let v = LeafVector::new(4);
        assert_eq!(v.leaves(), 16);
        assert!(v.is_zero());
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut v = LeafVector::new(7); // 128 leaves, 2 words
        for i in [0usize, 1, 63, 64, 65, 127] {
            v.set(i, true);
            assert!(v.get(i));
        }
        assert_eq!(v.count_ones(), 6);
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 5);
    }

    #[test]
    fn rank_matches_naive() {
        let mut v = LeafVector::new(8); // 256 leaves
        for i in (0..256).step_by(3) {
            v.set(i, true);
        }
        let mut ones = 0;
        for i in 0..256 {
            if v.get(i) {
                ones += 1;
            }
            assert_eq!(v.rank(i), ones, "rank({i})");
        }
    }

    #[test]
    fn rank_sums_survive_mutation_storms() {
        // Interleave sets, redundant sets, and clears across word
        // boundaries; rank must track a naive recount throughout.
        let mut v = LeafVector::new(9); // 512 leaves, 8 words
        let mut state = vec![false; 512];
        let mut x = 0x1234_5678_9ABC_DEFFu64;
        for _ in 0..4000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let i = (x % 512) as usize;
            let val = x & (1 << 20) != 0;
            v.set(i, val);
            state[i] = val;
            let probe = (x >> 32) as usize % 512;
            let naive = state[..=probe].iter().filter(|&&b| b).count();
            assert_eq!(v.rank(probe), naive, "rank({probe}) drifted");
        }
        assert_eq!(v.count_ones(), state.iter().filter(|&&b| b).count());
        v.clear();
        assert_eq!(v.rank(511), 0);
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn paper_figure5_example() {
        // Bit-vector 00001111 (leaves 4..8 set): leaf 4 ("100") has rank 1,
        // so the Result Table address is ptr + 1 - 1 = ptr.
        let mut v = LeafVector::new(3);
        for i in 4..8 {
            v.set(i, true);
        }
        assert_eq!(v.rank(4), 1);
        assert_eq!(v.rank(7), 4);
        assert_eq!(v.rank(3), 0);
        // Bit-vector 00000011 for collapsed prefix 1001 in Figure 5(d) is
        // leaves 6 and 7 in LSB-first order... the figure indexes leaves by
        // suffix value; leaf 6 = suffix 110, leaf 7 = 111.
        let mut v2 = LeafVector::new(3);
        v2.set(6, true);
        v2.set(7, true);
        assert_eq!(v2.count_ones(), 2);
        assert_eq!(v2.rank(6), 1);
    }

    #[test]
    fn stride_zero_single_leaf() {
        let mut v = LeafVector::new(0);
        assert_eq!(v.leaves(), 1);
        v.set(0, true);
        assert_eq!(v.rank(0), 1);
        assert!(!v.is_zero());
        v.clear();
        assert!(v.is_zero());
    }

    #[test]
    #[should_panic]
    fn out_of_range_get_panics() {
        LeafVector::new(3).get(8);
    }
}
