//! A generation-stamped, direct-mapped flow cache.
//!
//! Real traffic is heavily skewed — a small set of flows dominates the
//! key stream — so a tiny exact-match cache in front of the Chisel data
//! path turns most lookups into a single memory read instead of the
//! hash → Index → Filter ∥ Bit-vector → Result pipeline (the paper's four
//! sequential accesses, Section 6.7.1). The cache stores *full keys*, not
//! prefixes, so a hit needs no longest-prefix reasoning at all.
//!
//! Coherence is wholesale and free: every slot carries the engine
//! [`version`](crate::ChiselLpm::version) it was filled at (offset by one
//! so the zero stamp always means "empty"), and a hit requires the stamp
//! to match the engine's *current* version. Any announce or withdraw bumps
//! the version, so every cached entry — including cached misses — goes
//! stale at once without the writer ever touching reader-owned state.
//! This is what keeps [`SharedChisel`](crate::SharedChisel) readers
//! lock-free: each reader owns its cache outright (see
//! [`CachedReader`](crate::CachedReader)) and revalidates against the
//! snapshot it pinned for that lookup.
//!
//! One cache serves one engine *lineage*: stamps from unrelated engines
//! (both starting at version 0) are not comparable. [`FlowCache::clear`]
//! resets the cache when re-pointing it.

use chisel_hash::{MixHasher, SplitMix64};
use chisel_prefix::{Key, NextHop};

use crate::stats::LookupTrace;
use crate::ChiselLpm;

/// Seed of the fixed slot-index hash. The cache is a performance layer,
/// not a correctness layer, so an adversarial key set degrades it to
/// misses — never to wrong answers — and a fixed seed keeps behavior
/// reproducible across runs.
const SLOT_SEED: u64 = 0xF10C_CA11_D00D_F00D;

/// One direct-mapped cache line: the full key, its resolved next hop
/// (`None` is a cached *miss* — negative results are cacheable too), and
/// the engine version the entry was filled at, offset by one so a zeroed
/// slot can never match a live engine.
#[derive(Debug, Clone, Copy)]
struct Slot {
    stamp: u64,
    key: u128,
    hop: Option<NextHop>,
}

const EMPTY_SLOT: Slot = Slot {
    stamp: 0,
    key: 0,
    hop: None,
};

/// A direct-mapped, exact-match flow cache in front of a [`ChiselLpm`].
///
/// ```
/// use chisel_core::{ChiselConfig, ChiselLpm, FlowCache};
/// use chisel_prefix::{NextHop, RoutingTable};
///
/// # fn main() -> Result<(), chisel_core::ChiselError> {
/// let mut table = RoutingTable::new_v4();
/// table.insert("10.0.0.0/8".parse().unwrap(), NextHop::new(1));
/// let engine = ChiselLpm::build(&table, ChiselConfig::ipv4())?;
///
/// let mut cache = FlowCache::new(1024);
/// let key = "10.1.2.3".parse().unwrap();
/// assert_eq!(cache.lookup(&engine, key), Some(NextHop::new(1)));
/// assert_eq!(cache.lookup(&engine, key), Some(NextHop::new(1)));
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FlowCache {
    slots: Vec<Slot>,
    mask: usize,
    hasher: MixHasher,
    hits: u64,
    misses: u64,
    /// Batch scratch (kept across calls so the steady state allocates
    /// nothing): positions and keys of the lanes that missed, and the
    /// engine's answers for them.
    miss_idx: Vec<usize>,
    miss_keys: Vec<Key>,
    miss_out: Vec<Option<NextHop>>,
}

impl FlowCache {
    /// Default capacity in slots (32 bytes each — 8 Ki slots is a
    /// comfortably L2-resident 256 KiB).
    pub const DEFAULT_CAPACITY: usize = 8 * 1024;

    /// Creates a cache with at least `capacity` slots (rounded up to a
    /// power of two so the slot index is a mask, never a division).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1).next_power_of_two();
        let mut rng = SplitMix64::new(SLOT_SEED);
        FlowCache {
            slots: vec![EMPTY_SLOT; cap],
            mask: cap - 1,
            hasher: MixHasher::from_rng(&mut rng),
            hits: 0,
            misses: 0,
            // ALLOC-OK: empty scratch buffers on the cold construction
            // path; the batch loop reuses them without reallocating.
            miss_idx: Vec::new(),
            miss_keys: Vec::new(),
            miss_out: Vec::new(),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Lookups answered from the cache since creation (or [`clear`]).
    ///
    /// [`clear`]: FlowCache::clear
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that went through the full data path.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Empties every slot and zeroes the hit/miss counters. Required when
    /// re-pointing the cache at an unrelated engine (stamps from
    /// different lineages are not comparable).
    pub fn clear(&mut self) {
        self.slots.fill(EMPTY_SLOT);
        self.hits = 0;
        self.misses = 0;
    }

    #[inline]
    fn slot_index(&self, key: u128) -> usize {
        (self.hasher.hash_u64(key) as usize) & self.mask
    }

    /// Cached lookup: one exact-match read on a hit, the full engine
    /// data path (plus a cache fill) on a miss. Agrees with
    /// [`ChiselLpm::lookup`] on every key, always — the stamp check makes
    /// staleness impossible, not just unlikely.
    #[inline]
    pub fn lookup(&mut self, engine: &ChiselLpm, key: Key) -> Option<NextHop> {
        let stamp = engine.version().wrapping_add(1);
        let idx = self.slot_index(key.value());
        let slot = self.slots[idx];
        if slot.stamp == stamp && slot.key == key.value() {
            self.hits += 1;
            return slot.hop;
        }
        self.misses += 1;
        let hop = engine.lookup(key);
        self.slots[idx] = Slot {
            stamp,
            key: key.value(),
            hop,
        };
        hop
    }

    /// Like [`lookup`](FlowCache::lookup), accumulating into `trace`: a
    /// hit adds one `cache_hits` and zero table reads; a miss adds one
    /// `cache_misses` plus whatever the data path reads.
    pub fn lookup_traced(
        &mut self,
        engine: &ChiselLpm,
        key: Key,
        trace: &mut LookupTrace,
    ) -> Option<NextHop> {
        let stamp = engine.version().wrapping_add(1);
        let idx = self.slot_index(key.value());
        let slot = self.slots[idx];
        if slot.stamp == stamp && slot.key == key.value() {
            self.hits += 1;
            trace.cache_hits += 1;
            return slot.hop;
        }
        self.misses += 1;
        trace.cache_misses += 1;
        let hop = engine.lookup_traced(key, trace);
        self.slots[idx] = Slot {
            stamp,
            key: key.value(),
            hop,
        };
        hop
    }

    /// Cached batch lookup: hits are answered in a first pass, the
    /// missing lanes are funneled through [`ChiselLpm::lookup_batch`] in
    /// one software-pipelined sweep, and their answers back-fill both
    /// `out` and the cache. Steady state allocates nothing (the miss
    /// scratch is reused across calls).
    ///
    /// # Panics
    ///
    /// Panics if `keys` and `out` differ in length.
    pub fn lookup_batch(&mut self, engine: &ChiselLpm, keys: &[Key], out: &mut [Option<NextHop>]) {
        self.lookup_batch_lanes(engine, keys, out, 64);
    }

    /// [`FlowCache::lookup_batch`] with an explicit lane depth for the
    /// miss sweep (see [`ChiselLpm::lookup_batch_lanes`]).
    ///
    /// # Panics
    ///
    /// Panics if `keys` and `out` differ in length.
    pub fn lookup_batch_lanes(
        &mut self,
        engine: &ChiselLpm,
        keys: &[Key],
        out: &mut [Option<NextHop>],
        lanes: usize,
    ) {
        // ASSERT-OK: documented `# Panics` contract, checked once per
        // batch, amortized over every key.
        assert_eq!(
            keys.len(),
            out.len(),
            "lookup_batch: keys and out must have equal length"
        );
        let stamp = engine.version().wrapping_add(1);
        self.miss_idx.clear();
        self.miss_keys.clear();
        for (i, &key) in keys.iter().enumerate() {
            let slot = self.slots[self.slot_index(key.value())];
            if slot.stamp == stamp && slot.key == key.value() {
                self.hits += 1;
                out[i] = slot.hop;
            } else {
                self.misses += 1;
                self.miss_idx.push(i);
                self.miss_keys.push(key);
            }
        }
        if self.miss_keys.is_empty() {
            return;
        }
        self.miss_out.clear();
        self.miss_out.resize(self.miss_keys.len(), None);
        engine.lookup_batch_lanes(&self.miss_keys, &mut self.miss_out, lanes);
        for j in 0..self.miss_keys.len() {
            let key = self.miss_keys[j];
            let hop = self.miss_out[j];
            out[self.miss_idx[j]] = hop;
            let idx = self.slot_index(key.value());
            self.slots[idx] = Slot {
                stamp,
                key: key.value(),
                hop,
            };
        }
    }

    /// Like [`lookup_batch`](FlowCache::lookup_batch), accumulating into
    /// `trace`. Answers are identical to the untraced batch; the missing
    /// lanes walk the scalar traced data path so the per-table read
    /// counts (including `degraded_hits`) are exact — use the untraced
    /// batch when measuring throughput.
    ///
    /// # Panics
    ///
    /// Panics if `keys` and `out` differ in length.
    pub fn lookup_batch_traced(
        &mut self,
        engine: &ChiselLpm,
        keys: &[Key],
        out: &mut [Option<NextHop>],
        trace: &mut LookupTrace,
    ) {
        // ASSERT-OK: documented `# Panics` contract, checked once per
        // batch, amortized over every key.
        assert_eq!(
            keys.len(),
            out.len(),
            "lookup_batch_traced: keys and out must have equal length"
        );
        for (key, slot) in keys.iter().zip(out.iter_mut()) {
            *slot = self.lookup_traced(engine, *key, trace);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChiselConfig, ChiselLpm};
    use chisel_prefix::{AddressFamily, NextHop, Prefix, RoutingTable};

    fn engine() -> ChiselLpm {
        let mut t = RoutingTable::new_v4();
        t.insert("10.0.0.0/8".parse().unwrap(), NextHop::new(1));
        t.insert("10.1.0.0/16".parse().unwrap(), NextHop::new(2));
        ChiselLpm::build(&t, ChiselConfig::ipv4()).unwrap()
    }

    fn key(v: u128) -> Key {
        Key::from_raw(AddressFamily::V4, v)
    }

    #[test]
    fn hit_and_miss_counters() {
        let e = engine();
        let mut c = FlowCache::new(64);
        let k = key(0x0A01_0203);
        assert_eq!(c.lookup(&e, k), Some(NextHop::new(2)));
        assert_eq!((c.hits(), c.misses()), (0, 1));
        for _ in 0..5 {
            assert_eq!(c.lookup(&e, k), Some(NextHop::new(2)));
        }
        assert_eq!((c.hits(), c.misses()), (5, 1));
    }

    #[test]
    fn negative_results_are_cached() {
        let e = engine();
        let mut c = FlowCache::new(64);
        let k = key(0x7F00_0001);
        assert_eq!(c.lookup(&e, k), None);
        assert_eq!(c.lookup(&e, k), None);
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn update_invalidates_wholesale() {
        let mut e = engine();
        let mut c = FlowCache::new(64);
        let k = key(0x0B00_0001);
        assert_eq!(c.lookup(&e, k), None);
        e.announce("11.0.0.0/8".parse::<Prefix>().unwrap(), NextHop::new(7))
            .unwrap();
        // The stale cached miss must not survive the version bump.
        assert_eq!(c.lookup(&e, k), Some(NextHop::new(7)));
        e.withdraw("11.0.0.0/8".parse::<Prefix>().unwrap()).unwrap();
        assert_eq!(c.lookup(&e, k), None);
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 3);
    }

    #[test]
    fn traced_hits_skip_table_reads() {
        let e = engine();
        let mut c = FlowCache::new(64);
        let k = key(0x0A01_0203);
        let mut t = LookupTrace::default();
        c.lookup_traced(&e, k, &mut t);
        assert_eq!((t.cache_hits, t.cache_misses), (0, 1));
        assert!(t.total_reads() > 0);
        let reads_after_miss = t.total_reads();
        c.lookup_traced(&e, k, &mut t);
        assert_eq!((t.cache_hits, t.cache_misses), (1, 1));
        assert_eq!(
            t.total_reads(),
            reads_after_miss,
            "a cache hit must not touch the tables"
        );
    }

    #[test]
    fn batch_matches_scalar_with_collisions() {
        let e = engine();
        // A 4-slot cache forces constant eviction; answers must not care.
        let mut c = FlowCache::new(4);
        let keys: Vec<Key> = (0..512u128)
            .map(|i| key(0x0A00_0000 | (i * 2654435761 % 0x0002_0000)))
            .collect();
        let mut out = vec![None; keys.len()];
        c.lookup_batch(&e, &keys, &mut out);
        for (k, o) in keys.iter().zip(&out) {
            assert_eq!(*o, e.lookup(*k), "batch diverged at {k}");
        }
        assert_eq!(c.hits() + c.misses(), keys.len() as u64);
        // Re-running the same batch against an unchanged engine hits a lot.
        c.lookup_batch(&e, &keys, &mut out);
        assert!(c.hits() > 0);
    }

    #[test]
    fn batch_traced_matches_batch_and_accounts_every_lane() {
        let e = engine();
        let mut traced = FlowCache::new(64);
        let mut plain = FlowCache::new(64);
        let keys: Vec<Key> = (0..256u128)
            .map(|i| key(0x0A00_0000 | (i * 7919)))
            .collect();
        let mut t = LookupTrace::default();
        let mut out_traced = vec![None; keys.len()];
        let mut out_plain = vec![None; keys.len()];
        for _ in 0..2 {
            traced.lookup_batch_traced(&e, &keys, &mut out_traced, &mut t);
            plain.lookup_batch(&e, &keys, &mut out_plain);
            assert_eq!(out_traced, out_plain);
        }
        assert_eq!(
            t.cache_hits + t.cache_misses,
            2 * keys.len(),
            "every lane must be accounted as a hit or a miss"
        );
        // Counters stay coherent with the cache's own totals. (Exact
        // hit counts may differ from the untraced batch: the scalar
        // fill order resolves same-slot collisions within one batch.)
        assert_eq!(
            (t.cache_hits as u64, t.cache_misses as u64),
            (traced.hits(), traced.misses())
        );
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(FlowCache::new(1000).capacity(), 1024);
        assert_eq!(FlowCache::new(1).capacity(), 1);
        assert_eq!(FlowCache::new(0).capacity(), 1);
    }

    #[test]
    fn clear_resets_slots_and_counters() {
        let e = engine();
        let mut c = FlowCache::new(64);
        let k = key(0x0A01_0203);
        c.lookup(&e, k);
        c.lookup(&e, k);
        c.clear();
        assert_eq!((c.hits(), c.misses()), (0, 0));
        c.lookup(&e, k);
        assert_eq!((c.hits(), c.misses()), (0, 1));
    }
}
