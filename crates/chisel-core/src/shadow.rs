//! The software shadow of one collapsed-prefix group.
//!
//! The paper keeps "a shadow copy of the data structures in software" on
//! the line card's network processor (Section 4.4); updates are applied to
//! the shadow first and the regenerated bit-vector/result block is then
//! written to the hardware engine. The shadow for one group records the
//! *original* prefixes that collapsed onto the group's key, which is
//! exactly the information the hardware tables discard.

use std::collections::BTreeMap;
use std::sync::Arc;

use chisel_prefix::NextHop;

/// The original prefixes of one collapsed group, keyed by
/// `(length - base, suffix bits below base)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroupShadow {
    /// `(depth, suffix)` -> next hop, where `depth = original_len - base`
    /// and `suffix` is the collapsed-away low bits of the prefix.
    ///
    /// `Arc`-shared so that cloning a shadow — which happens 64 entries
    /// at a time whenever a snapshot write copies a [`crate::SubCell`]
    /// chunk — is a pointer bump, not a tree copy; only the one shadow a
    /// mutator actually touches pays for an unshared map.
    routes: Arc<BTreeMap<(u8, u128), NextHop>>,
}

impl GroupShadow {
    /// Creates an empty shadow.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of original prefixes in the group.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the group holds no prefixes (its collapsed key can be
    /// marked dirty).
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Inserts or overwrites an original prefix, returning the previous
    /// next hop if the prefix existed.
    pub fn insert(&mut self, depth: u8, suffix: u128, next_hop: NextHop) -> Option<NextHop> {
        Arc::make_mut(&mut self.routes).insert((depth, suffix), next_hop)
    }

    /// Removes an original prefix, returning its next hop if present.
    pub fn remove(&mut self, depth: u8, suffix: u128) -> Option<NextHop> {
        if !self.routes.contains_key(&(depth, suffix)) {
            // Misses stay clone-free: don't unshare the map for a no-op.
            return None;
        }
        Arc::make_mut(&mut self.routes).remove(&(depth, suffix))
    }

    /// Exact-match lookup of an original prefix.
    pub fn get(&self, depth: u8, suffix: u128) -> Option<NextHop> {
        self.routes.get(&(depth, suffix)).copied()
    }

    /// Resolves the next hop of leaf `leaf` in a `stride`-bit subtree: the
    /// *longest* (deepest) group prefix covering the leaf, per LPM
    /// semantics. `None` when no prefix covers the leaf.
    pub fn resolve_leaf(&self, leaf: usize, stride: u8) -> Option<NextHop> {
        // Deepest depth first: a prefix of depth d covers leaf iff
        // leaf >> (stride - d) == suffix.
        for depth in (0..=stride).rev() {
            let suffix = (leaf as u128) >> (stride - depth);
            if let Some(&nh) = self.routes.get(&(depth, suffix)) {
                return Some(nh);
            }
        }
        None
    }

    /// Iterates `(depth, suffix, next_hop)` in ascending depth order.
    pub fn iter(&self) -> impl Iterator<Item = (u8, u128, NextHop)> + '_ {
        self.routes.iter().map(|(&(d, s), &nh)| (d, s, nh))
    }

    /// Removes every prefix.
    pub fn clear(&mut self) {
        if self.routes.is_empty() {
            return;
        }
        match Arc::get_mut(&mut self.routes) {
            Some(r) => r.clear(),
            None => self.routes = Arc::default(),
        }
    }

    /// Merges another shadow's prefixes into this one. Used by the
    /// parallel build to combine per-chunk partial groups; because the
    /// routing table holds each prefix once, the same `(depth, suffix)`
    /// never appears in two partials and the merge is order-independent.
    pub fn absorb(&mut self, other: GroupShadow) {
        if self.routes.is_empty() {
            self.routes = other.routes;
            return;
        }
        let merged = Arc::make_mut(&mut self.routes);
        match Arc::try_unwrap(other.routes) {
            Ok(r) => merged.extend(r),
            Err(shared) => merged.extend(shared.iter().map(|(&k, &v)| (k, v))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_prefers_deepest() {
        let mut g = GroupShadow::new();
        // stride 3; depth 0 covers everything, depth 2 suffix 0b10 covers
        // leaves 4 and 5, depth 3 suffix 0b101 covers leaf 5 only.
        g.insert(0, 0, NextHop::new(1));
        g.insert(2, 0b10, NextHop::new(2));
        g.insert(3, 0b101, NextHop::new(3));
        assert_eq!(g.resolve_leaf(5, 3), Some(NextHop::new(3)));
        assert_eq!(g.resolve_leaf(4, 3), Some(NextHop::new(2)));
        assert_eq!(g.resolve_leaf(0, 3), Some(NextHop::new(1)));
        assert_eq!(g.resolve_leaf(7, 3), Some(NextHop::new(1)));
    }

    #[test]
    fn resolve_without_cover_is_none() {
        let mut g = GroupShadow::new();
        g.insert(2, 0b11, NextHop::new(9)); // covers leaves 6, 7 of 8
        assert_eq!(g.resolve_leaf(0, 3), None);
        assert_eq!(g.resolve_leaf(6, 3), Some(NextHop::new(9)));
        assert_eq!(g.resolve_leaf(7, 3), Some(NextHop::new(9)));
    }

    #[test]
    fn paper_figure5_groups() {
        // Group for collapsed prefix 1001 (base 4, stride 3):
        // P1 = 10011* (depth 1, suffix 1), P3 = 1001101 (depth 3, 101).
        let mut g = GroupShadow::new();
        g.insert(1, 0b1, NextHop::new(1)); // P1
        g.insert(3, 0b101, NextHop::new(3)); // P3
                                             // Figure 5(c): leaves 100..111 resolve to P1 except 101 -> P3.
        assert_eq!(g.resolve_leaf(0b100, 3), Some(NextHop::new(1)));
        assert_eq!(g.resolve_leaf(0b101, 3), Some(NextHop::new(3)));
        assert_eq!(g.resolve_leaf(0b110, 3), Some(NextHop::new(1)));
        assert_eq!(g.resolve_leaf(0b111, 3), Some(NextHop::new(1)));
        for leaf in 0..4 {
            assert_eq!(g.resolve_leaf(leaf, 3), None);
        }
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut g = GroupShadow::new();
        assert!(g.is_empty());
        assert_eq!(g.insert(2, 1, NextHop::new(5)), None);
        assert_eq!(g.insert(2, 1, NextHop::new(6)), Some(NextHop::new(5)));
        assert_eq!(g.len(), 1);
        assert_eq!(g.get(2, 1), Some(NextHop::new(6)));
        assert_eq!(g.remove(2, 1), Some(NextHop::new(6)));
        assert!(g.is_empty());
        assert_eq!(g.remove(2, 1), None);
    }

    #[test]
    fn depth_zero_group_prefix() {
        // A prefix exactly at the base length covers the whole subtree.
        let mut g = GroupShadow::new();
        g.insert(0, 0, NextHop::new(4));
        for leaf in 0..16 {
            assert_eq!(g.resolve_leaf(leaf, 4), Some(NextHop::new(4)));
        }
    }
}
