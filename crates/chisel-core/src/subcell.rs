//! One Chisel sub-cell (Figure 6): a partitioned Bloomier Index Table, a
//! Filter Table for exact false-positive elimination, a Bit-vector Table
//! disambiguating collapsed bits, a Result Table of next hops, and a small
//! spillover store for setup-failure keys.
//!
//! A sub-cell serves all original prefix lengths in `base ..= base+stride`;
//! the engine instantiates one sub-cell per stride-plan cell and searches
//! them in parallel (here: in priority order).

use std::collections::HashMap;

use chisel_bloomier::{BloomierError, IndexLayout, PartitionedBloomier};
use chisel_hash::KeyDigest;
use chisel_prefix::bits::{addr_bits, extract_msb};
use chisel_prefix::collapse::CellRange;
use chisel_prefix::parallel::parallel_map;
use chisel_prefix::NextHop;

use crate::bitvector::LeafVector;
use crate::cow::CowTable;
use crate::faultpoint;
use crate::result_table::{Block, ResultTable};
use crate::shadow::GroupShadow;
use crate::stats::{LookupTrace, RecoveryStats};
use crate::verify::VerifyReport;
use crate::ChiselError;

/// One Filter Table entry: the collapsed key, a valid bit, and the dirty
/// bit used to absorb route flaps (Section 4.4.1).
#[derive(Debug, Clone)]
struct FilterEntry {
    key: u128,
    valid: bool,
    dirty: bool,
}

/// One Bit-vector Table entry: the leaf vector plus its Result Table block.
#[derive(Debug, Clone)]
struct BitVecEntry {
    vector: LeafVector,
    block: Option<Block>,
}

/// A lookup key pre-processed for one sub-cell: the collapsed key, its
/// one-pass hash digest (valid for the cell's selector and every Index
/// Table partition), and the bit-vector leaf index. Computed once per
/// (key, cell) by [`SubCell::prepare`] and threaded through every pipeline
/// stage, so no stage re-collapses or re-hashes the key.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PreparedKey {
    collapsed: u128,
    digest: KeyDigest,
    leaf: usize,
}

/// Geometry and hashing parameters a sub-cell is built with.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CellParams {
    pub k: usize,
    pub m_per_key: f64,
    pub partitions: usize,
    pub seed: u64,
    pub spill_capacity: usize,
    pub flap_absorption: bool,
    /// Workers for full builds (initial build and grow-rebuilds). Already
    /// resolved by the engine: `>= 1`, never the `0 = auto` sentinel.
    pub build_threads: usize,
    /// Salted setup attempts per partition re-setup before the update
    /// degrades into the spillover TCAM.
    pub resetup_retries: u32,
    /// Whether Index Table partitions use the cache-line-blocked layout
    /// (one 64-byte line per cold lookup instead of `k`).
    pub blocked_index: bool,
}

/// Outcome of a sub-cell announce, refined by the engine into an
/// [`crate::UpdateKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AnnounceOutcome {
    /// Cleared a dirty bit (the collapsed key never left the Index Table).
    DirtyRestore,
    /// The exact prefix existed; only its next hop changed.
    NextHopOnly,
    /// New prefix absorbed into an existing collapsed group.
    Collapsed,
    /// New collapsed key inserted via a singleton.
    Singleton,
    /// New collapsed key forced a partition re-setup.
    Resetup,
    /// The re-setup exhausted its retry budget; the key was parked in the
    /// spillover TCAM instead (degraded mode).
    DegradedSpill,
}

/// Result of one [`SubCell::announce_batched`] step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BatchAnnounce {
    /// Whether the step triggered a capacity-doubling full cell rebuild.
    /// A grow re-encodes *every* live group of the cell, so any pending
    /// (deferred) inserts of this cell are resolved by it — the engine
    /// must drop them from its rebuild worklist.
    pub grew: bool,
    /// What happened to this announce.
    pub step: BatchStep,
}

/// How a batched announce was absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BatchStep {
    /// Fully applied, same classification as the one-at-a-time path.
    Applied(AnnounceOutcome),
    /// New collapsed key that found no singleton: parked transiently in
    /// the spillover TCAM at this slot, awaiting the batch rebuild phase.
    Pending(u32),
}

/// The gathered inputs of one deferred partition re-setup (batch rebuild
/// unit): produced by [`SubCell::plan_partition_resetup`] on a worker
/// thread, consumed by [`SubCell::commit_partition_resetup`] on the
/// update thread.
#[derive(Debug, Clone)]
pub(crate) struct PartitionResetupPlan {
    /// The Index Table partition being re-encoded.
    pub part: usize,
    /// Live `(collapsed key, slot)` pairs to place, spillover re-offers
    /// and pending batch inserts included.
    pub keys: Vec<(u128, u32)>,
    /// Dirty rows of the partition, purged only if the commit succeeds.
    pub purges: Vec<u32>,
}

/// A Chisel sub-cell.
///
/// The big tables are chunked copy-on-write ([`CowTable`]) and the Index
/// Table partitions sit behind `Arc`s, so cloning a sub-cell is cheap and
/// an update's clone-apply-publish cycle (see [`crate::SharedChisel`])
/// deep-copies only the blocks the update actually writes — the
/// software analogue of the paper's "modified portions … are transferred
/// to the hardware engine" (Section 4.4).
#[derive(Debug, Clone)]
pub(crate) struct SubCell {
    range: CellRange,
    width: u8,
    params: CellParams,
    index: PartitionedBloomier,
    filter: CowTable<FilterEntry>,
    bitvec: CowTable<BitVecEntry>,
    shadows: CowTable<GroupShadow>,
    /// Slots `next_fresh..capacity` have never been claimed; `recycled`
    /// holds purged slots. (An O(1)-clone replacement for a free stack.)
    next_fresh: u32,
    recycled: Vec<u32>,
    result: ResultTable,
    /// Spillover TCAM: (collapsed key, slot) pairs, searched before the
    /// Index Table.
    spill: Vec<(u128, u32)>,
    /// Collapsed keys parked in the spillover TCAM because their partition
    /// re-setup exhausted its retry budget (degraded mode). Sorted; always
    /// a subset of `spill`'s keys.
    degraded: Vec<u128>,
    live_groups: usize,
    resetups: u64,
    /// Re-setup retry / degradation / rollback counters.
    recovery: RecoveryStats,
}

impl SubCell {
    /// Builds a sub-cell over pre-grouped collapsed prefixes.
    ///
    /// `capacity` is the Filter/Bit-vector Table depth to provision. The
    /// paper sizes deterministically for the *original prefix* count
    /// (Section 4.3.2), which keeps the Index Table load low and makes
    /// incremental singleton inserts nearly always succeed.
    pub fn build(
        range: CellRange,
        width: u8,
        params: CellParams,
        mut groups: Vec<(u128, GroupShadow)>,
        capacity: usize,
    ) -> Result<Self, ChiselError> {
        let capacity = capacity.max(groups.len()).max(64);
        // Collapsed keys are unique, so sorting gives a total order: slot
        // `i` always holds the i-th smallest key, regardless of the order
        // the caller grouped in (HashMap drain, parallel merge, ...). This
        // is what makes the whole build byte-reproducible.
        groups.sort_unstable_by_key(|&(bits, _)| bits);
        let mut cell = SubCell {
            range,
            width,
            params,
            // Index Table entries are slot pointers: w = ceil(log2(depth))
            // bits each (the Section 5 storage model), bit-packed.
            index: PartitionedBloomier::empty_packed_layout(
                params.k,
                ((capacity as f64) * params.m_per_key).ceil() as usize,
                params.partitions,
                addr_bits(capacity),
                if params.blocked_index {
                    IndexLayout::Blocked
                } else {
                    IndexLayout::Flat
                },
                cell_seed(params.seed, range.base),
            ),
            filter: CowTable::from_fn(capacity, |_| FilterEntry {
                key: 0,
                valid: false,
                dirty: false,
            }),
            bitvec: CowTable::from_fn(capacity, |_| BitVecEntry {
                vector: LeafVector::new(range.stride),
                block: None,
            }),
            shadows: CowTable::from_fn(capacity, |_| GroupShadow::new()),
            next_fresh: 0,
            recycled: Vec::new(),
            result: ResultTable::new(),
            spill: Vec::new(),
            degraded: Vec::new(),
            live_groups: 0,
            resetups: 0,
            recovery: RecoveryStats::default(),
        };
        cell.install_groups(groups)?;
        Ok(cell)
    }

    /// Installs groups into a freshly-initialized cell: claims slots,
    /// writes filter/bit-vector/result state, and runs Bloomier setup over
    /// all keys at once.
    ///
    /// The fill and setup phases fan out over `params.build_threads`
    /// workers, but every ordering that matters — slot claims, Result
    /// Table block allocation, partition assembly, spill concatenation —
    /// is fixed in advance, so the cell is byte-identical to a serial
    /// build.
    fn install_groups(&mut self, groups: Vec<(u128, GroupShadow)>) -> Result<(), ChiselError> {
        let threads = self.params.build_threads.max(1);
        // Phase 1 (sequential, cheap): claim slots and write the Filter
        // Table and shadows. Slot order is the determinism anchor.
        let mut keys = Vec::with_capacity(groups.len());
        for (bits, shadow) in groups {
            let slot = self.claim_slot().ok_or(ChiselError::CapacityExceeded {
                cell_base: self.range.base,
            })?;
            *self.filter.get_mut(slot as usize).expect("claimed slot") = FilterEntry {
                key: bits,
                valid: true,
                dirty: false,
            };
            *self.shadows.get_mut(slot as usize).expect("claimed slot") = shadow;
            self.live_groups += 1;
            keys.push((bits, slot));
        }
        // Phase 2: resolve each group's per-leaf next hops in parallel
        // (the LPM-per-leaf scan dominates fill cost), then assemble
        // bit-vectors and Result Table blocks sequentially in slot order
        // so block addresses never depend on scheduling.
        let stride = self.range.stride;
        let fills = {
            let shadows = &self.shadows;
            parallel_map(threads, &keys, |_, &(_, slot)| {
                leaf_hops(&shadows[slot as usize], stride)
            })
        };
        for (&(_, slot), hops) in keys.iter().zip(fills) {
            self.apply_fill(slot, hops);
        }
        // Phase 3: the d independent Bloomier partition setups run
        // concurrently (Section 4.4.2); partitions are installed and
        // spills concatenated in partition order.
        let (index, spilled) = PartitionedBloomier::build_with_threads_layout(
            self.params.k,
            self.index.total_m(),
            self.index.d(),
            self.index.value_bits(),
            self.index.layout(),
            self.index.seed(),
            &keys,
            threads,
            self.params.resetup_retries.max(1),
        )?;
        self.index = index;
        self.spill = spilled;
        self.sort_spill();
        if self.spill.len() > self.params.spill_capacity {
            return Err(ChiselError::SpilloverOverflow {
                needed: self.spill.len(),
                capacity: self.params.spill_capacity,
            });
        }
        Ok(())
    }

    /// Claims a free slot: recycled slots first, then never-used ones.
    fn claim_slot(&mut self) -> Option<u32> {
        if let Some(s) = self.recycled.pop() {
            return Some(s);
        }
        if (self.next_fresh as usize) < self.capacity() {
            let s = self.next_fresh;
            self.next_fresh += 1;
            Some(s)
        } else {
            None
        }
    }

    /// Whether no free slot remains.
    fn slots_exhausted(&self) -> bool {
        self.recycled.is_empty() && self.next_fresh as usize >= self.capacity()
    }

    /// The cell's length range.
    pub fn range(&self) -> CellRange {
        self.range
    }

    /// Number of live (non-dirty) collapsed groups.
    pub fn groups(&self) -> usize {
        self.live_groups
    }

    /// Filter/Bit-vector Table depth the cell is provisioned for.
    pub fn capacity(&self) -> usize {
        self.filter.len()
    }

    /// Index Table locations (across all partitions).
    pub fn index_locations(&self) -> usize {
        self.index.total_m()
    }

    /// Width `w` of one packed Index Table entry in bits.
    pub fn index_value_bits(&self) -> u32 {
        self.index.value_bits()
    }

    /// Logical Index Table storage: `total_m * w` bits — the Section 5
    /// storage-model figure, now measured off the real packed arena.
    pub fn index_logical_bits(&self) -> u64 {
        self.index.logical_bits()
    }

    /// Physical Index Table arena storage (whole 64-bit backing words).
    pub fn index_arena_bits(&self) -> u64 {
        self.index.arena_bits()
    }

    /// Spillover TCAM occupancy.
    pub fn spill_len(&self) -> usize {
        self.spill.len()
    }

    /// Keys currently parked in the spillover TCAM by failed re-setups.
    pub fn degraded_len(&self) -> usize {
        self.degraded.len()
    }

    /// Re-setup recovery counters for this cell.
    pub fn recovery(&self) -> RecoveryStats {
        self.recovery
    }

    /// Number of partition re-setups this cell has performed.
    pub fn resetups(&self) -> u64 {
        self.resetups
    }

    /// Result Table (off-chip) high-water mark in entries.
    pub fn result_high_water(&self) -> usize {
        self.result.high_water()
    }

    /// The collapsed key of a full-width lookup value for this cell.
    #[inline]
    fn collapse_key(&self, key_value: u128) -> u128 {
        extract_msb(key_value, self.width, 0, self.range.base)
    }

    /// The bit-vector leaf index of a full-width lookup value.
    #[inline]
    fn leaf_of(&self, key_value: u128) -> usize {
        extract_msb(key_value, self.width, self.range.base, self.range.stride) as usize
    }

    /// Whether the cell holds no live groups. Only `valid && !dirty` rows
    /// can produce a match, so an empty cell answers every lookup with
    /// `None` — the engine branches past it without touching its tables.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live_groups == 0
    }

    /// Searches the spillover TCAM for a collapsed key. The spill vector
    /// is kept sorted by key (every rebuild re-sorts it), so the common
    /// empty case is one branch and the rest is a binary search — never a
    /// linear scan on the hot path.
    #[inline]
    fn spill_slot(&self, collapsed: u128) -> Option<u32> {
        if self.spill.is_empty() {
            return None;
        }
        self.spill
            .binary_search_by_key(&collapsed, |&(k, _)| k)
            .ok()
            .map(|i| self.spill[i].1)
    }

    /// Restores the sorted-by-key invariant [`SubCell::spill_slot`] relies
    /// on after a rebuild appended spilled keys.
    fn sort_spill(&mut self) {
        self.spill.sort_unstable_by_key(|&(k, _)| k);
    }

    /// Finds the slot bound to a collapsed key: spillover TCAM first, then
    /// the Index Table, validated against the Filter Table. Returns the
    /// slot even for dirty entries (callers distinguish).
    fn slot_of(&self, collapsed: u128) -> Option<u32> {
        if let Some(slot) = self.spill_slot(collapsed) {
            return Some(slot);
        }
        let p = self.index.lookup(collapsed);
        let entry = self.filter.get(p as usize)?;
        (entry.valid && entry.key == collapsed).then_some(p)
    }

    /// Pre-processes a full-width lookup value for this cell: collapse,
    /// one-pass hash digest, leaf index. The digest is shared by the
    /// partition selector and all `k` Index Table probes, so this is the
    /// only time the key is hashed for this cell.
    #[inline]
    pub fn prepare(&self, key_value: u128) -> PreparedKey {
        let collapsed = self.collapse_key(key_value);
        PreparedKey {
            collapsed,
            digest: self.index.digest(collapsed),
            leaf: self.leaf_of(key_value),
        }
    }

    /// Modeled cold-cache lines one Index Table probe costs: one 64-byte
    /// line under the blocked layout (all `k` probes share it), `k` lines
    /// under the flat layout (each probe may land on a distinct line) —
    /// the quantity the DESIGN.md §11 access budget is written against.
    #[inline]
    fn index_probe_lines(&self) -> u64 {
        match self.index.layout() {
            IndexLayout::Blocked => 1,
            IndexLayout::Flat => self.params.k as u64,
        }
    }

    /// Full data-path lookup for a key, tracing memory accesses.
    pub fn lookup(&self, key_value: u128, trace: &mut LookupTrace) -> Option<NextHop> {
        let collapsed = self.collapse_key(key_value);
        // Hardware reads the k index segments in parallel: one access.
        trace.index_reads += 1;
        let slot = if let Some(s) = self.spill_slot(collapsed) {
            trace.spill_hits += 1;
            if self.degraded.binary_search(&collapsed).is_ok() {
                trace.degraded_hits += 1;
            }
            s
        } else {
            trace.cache_lines_touched += self.index_probe_lines();
            self.index.lookup(collapsed)
        };
        let entry = self.filter.get(slot as usize)?;
        trace.filter_reads += 1;
        trace.bitvec_reads += 1; // read in parallel with the filter check
        trace.cache_lines_touched += 2; // one line each: filter row, bit-vector row
        if !entry.valid || entry.dirty || entry.key != collapsed {
            return None; // no match or false positive filtered out
        }
        let bv = &self.bitvec[slot as usize];
        let leaf = self.leaf_of(key_value);
        if !bv.vector.get(leaf) {
            return None;
        }
        let rank = bv.vector.rank(leaf);
        debug_assert!(bv.block.is_some(), "set leaf implies allocated block");
        let block = bv.block?;
        trace.result_reads += 1;
        trace.cache_lines_touched += 1;
        Some(self.result.read(block, rank - 1))
    }

    /// Stage 1 of the pipelined batch lookup: prefetch the Index Table
    /// locations of this key's hash neighborhood.
    #[inline]
    pub fn prefetch_index(&self, p: &PreparedKey) {
        self.index.prefetch_digest(p.digest);
    }

    /// Stage 2 of the pipelined batch lookup: resolve the candidate slot
    /// (spillover TCAM first, then the Index Table) without validating
    /// it. For keys outside the encoded set the slot is an arbitrary
    /// value that [`SubCell::lookup_at`] rejects.
    #[inline]
    pub fn probe_slot(&self, p: &PreparedKey) -> u32 {
        if let Some(s) = self.spill_slot(p.collapsed) {
            s
        } else {
            self.index.lookup_digest(p.digest)
        }
    }

    /// Lane-granular stage 2 of the batch pipeline: resolves candidate
    /// slots for a whole group of prepared keys at once. The Index Table
    /// probes go through the partition-bucketed SIMD batch kernel
    /// ([`PartitionedBloomier::lookup_digest_batch`]); spillover-TCAM hits
    /// then override their lanes, preserving the TCAM-before-Index search
    /// order of [`SubCell::probe_slot`] exactly.
    pub fn probe_slots(&self, prepared: &[PreparedKey], slots: &mut [u32]) {
        debug_assert_eq!(prepared.len(), slots.len());
        const MAX: usize = 64;
        if prepared.len() > MAX {
            for (s, p) in slots.iter_mut().zip(prepared) {
                *s = self.probe_slot(p);
            }
            return;
        }
        let mut digests = [KeyDigest::default(); MAX];
        for (d, p) in digests.iter_mut().zip(prepared) {
            *d = p.digest;
        }
        self.index
            .lookup_digest_batch(&digests[..prepared.len()], slots);
        if !self.spill.is_empty() {
            for (s, p) in slots.iter_mut().zip(prepared) {
                if let Some(sp) = self.spill_slot(p.collapsed) {
                    *s = sp;
                }
            }
        }
    }

    /// Prefetches the Filter and Bit-vector Table rows of a candidate
    /// slot (no-op for out-of-range slots from unencoded keys).
    #[inline]
    pub fn prefetch_row(&self, slot: u32) {
        let si = slot as usize;
        if si < self.filter.len() {
            chisel_bloomier::prefetch_read(&self.filter[si]);
            chisel_bloomier::prefetch_read(&self.bitvec[si]);
        }
    }

    /// Stage 3 of the pipelined batch lookup: the validate-and-read tail
    /// of [`SubCell::lookup`] for an already-resolved candidate slot.
    #[inline]
    pub fn lookup_at(&self, slot: u32, p: &PreparedKey) -> Option<NextHop> {
        let entry = self.filter.get(slot as usize)?;
        if !entry.valid || entry.dirty || entry.key != p.collapsed {
            return None; // no match or false positive filtered out
        }
        let bv = &self.bitvec[slot as usize];
        if !bv.vector.get(p.leaf) {
            return None;
        }
        let rank = bv.vector.rank(p.leaf);
        debug_assert!(bv.block.is_some(), "set leaf implies allocated block");
        let block = bv.block?;
        Some(self.result.read(block, rank - 1))
    }

    /// Rebuilds slot's bit-vector and Result Table block from its shadow.
    fn regenerate(&mut self, slot: u32) {
        let hops = leaf_hops(&self.shadows[slot as usize], self.range.stride);
        self.apply_fill(slot, hops);
    }

    /// Writes a precomputed per-leaf fill (from [`leaf_hops`]) into slot's
    /// bit-vector and Result Table block. Result Table allocation order —
    /// hence every block address — follows call order exactly.
    fn apply_fill(&mut self, slot: u32, hops: Vec<Option<NextHop>>) {
        let si = slot as usize;
        let ones = hops.iter().filter(|h| h.is_some()).count();

        let entry = self.bitvec.get_mut(si).expect("slot in range");
        entry.vector.clear();
        // Keep the old block if it still fits; else swap.
        let need_new = match entry.block {
            Some(b) => b.capacity() < ones,
            None => ones > 0,
        };
        if need_new || ones == 0 {
            if let Some(old) = entry.block.take() {
                self.result.release(old);
            }
        }
        if ones == 0 {
            return;
        }
        if need_new {
            let block = self.result.alloc(ones);
            self.bitvec.get_mut(si).expect("slot in range").block = Some(block);
        }
        let block = self.bitvec[si].block.expect("allocated above");
        let mut off = 0usize;
        let entry = self.bitvec.get_mut(si).expect("slot in range");
        for (leaf, hop) in hops.iter().enumerate() {
            if hop.is_some() {
                entry.vector.set(leaf, true);
            }
        }
        for hop in hops.into_iter().flatten() {
            self.result.write(block, off, hop);
            off += 1;
        }
    }

    /// The existing-collapsed-key half of an announce: clears a dirty bit
    /// if set, inserts/overwrites the prefix in the group shadow and
    /// regenerates the row. Shared verbatim by the one-at-a-time and
    /// batched announce paths.
    fn announce_existing(
        &mut self,
        slot: u32,
        depth: u8,
        suffix: u128,
        next_hop: NextHop,
    ) -> AnnounceOutcome {
        let si = slot as usize;
        let was_dirty = self.filter[si].dirty;
        if was_dirty {
            self.filter.get_mut(si).expect("resolved slot").dirty = false;
            self.shadows.get_mut(si).expect("resolved slot").clear();
            self.live_groups += 1;
        }
        let existed = self
            .shadows
            .get_mut(si)
            .expect("resolved slot")
            .insert(depth, suffix, next_hop)
            .is_some();
        self.regenerate(slot);
        self.debug_assert_slot(slot);
        if was_dirty {
            AnnounceOutcome::DirtyRestore
        } else if existed {
            AnnounceOutcome::NextHopOnly
        } else {
            AnnounceOutcome::Collapsed
        }
    }

    /// Stages a brand-new collapsed group: claims a slot (growing the cell
    /// if exhausted), writes the Filter row and shadow, regenerates the
    /// row. Returns `(slot, grew)`. The key has *no* Index Table encoding
    /// yet — the caller must obtain one (or roll back via
    /// [`SubCell::rollback_new_group`]).
    fn stage_new_group(
        &mut self,
        collapsed: u128,
        depth: u8,
        suffix: u128,
        next_hop: NextHop,
    ) -> Result<(u32, bool), ChiselError> {
        let grew = if self.slots_exhausted() {
            self.grow()?;
            true
        } else {
            false
        };
        let slot = self.claim_slot().ok_or(ChiselError::CapacityExceeded {
            cell_base: self.range.base,
        })?;
        let si = slot as usize;
        *self.filter.get_mut(si).expect("claimed slot") = FilterEntry {
            key: collapsed,
            valid: true,
            dirty: false,
        };
        let shadow = self.shadows.get_mut(si).expect("claimed slot");
        shadow.clear();
        shadow.insert(depth, suffix, next_hop);
        self.regenerate(slot);
        self.live_groups += 1;
        Ok((slot, grew))
    }

    /// Attempts the incremental singleton insert for a staged new key.
    /// NO_SINGLETON forces the re-setup path even when the encoding would
    /// have accepted it.
    fn try_insert_new(&mut self, collapsed: u128, slot: u32) -> Result<(), BloomierError> {
        if faultpoint::fire(faultpoint::NO_SINGLETON) {
            Err(BloomierError::NoSingleton { key: collapsed })
        } else {
            self.index.try_insert(collapsed, slot)
        }
    }

    /// Applies an announce for an original prefix of `depth` extra bits
    /// and collapsed key `collapsed`.
    pub fn announce(
        &mut self,
        collapsed: u128,
        depth: u8,
        suffix: u128,
        next_hop: NextHop,
    ) -> Result<AnnounceOutcome, ChiselError> {
        if let Some(slot) = self.slot_of(collapsed) {
            return Ok(self.announce_existing(slot, depth, suffix, next_hop));
        }

        // New collapsed key: claim a slot (growing if exhausted).
        let (slot, grew) = self.stage_new_group(collapsed, depth, suffix, next_hop)?;
        let outcome = match self.try_insert_new(collapsed, slot) {
            Ok(()) if grew => Ok(AnnounceOutcome::Resetup),
            Ok(()) => Ok(AnnounceOutcome::Singleton),
            Err(BloomierError::NoSingleton { .. }) => self.resetup_partition_with(collapsed, slot),
            Err(e) => Err(e.into()),
        };
        let outcome = match outcome {
            Ok(o) => o,
            Err(e) => {
                // Recovery was impossible (e.g. no TCAM room to park the
                // key): roll the new group back so the cell answers
                // exactly as before the announce.
                self.rollback_new_group(collapsed, slot);
                return Err(e);
            }
        };
        self.debug_assert_slot(slot);
        Ok(outcome)
    }

    /// Batched-path announce: identical to [`SubCell::announce`] except
    /// that a no-singleton insert does *not* re-set-up its partition
    /// inline. The staged key is instead parked transiently in the
    /// spillover TCAM (searched before the Index Table), which keeps the
    /// whole cell consistent — lookups, later batch ops and the verifier
    /// all resolve the key through the TCAM — while the engine defers the
    /// re-setup to the batch rebuild phase, where all pending inserts of
    /// one (cell, partition) share a single parallel rebuild unit.
    pub(crate) fn announce_batched(
        &mut self,
        collapsed: u128,
        depth: u8,
        suffix: u128,
        next_hop: NextHop,
    ) -> Result<BatchAnnounce, ChiselError> {
        if let Some(slot) = self.slot_of(collapsed) {
            return Ok(BatchAnnounce {
                grew: false,
                step: BatchStep::Applied(self.announce_existing(slot, depth, suffix, next_hop)),
            });
        }
        let (slot, grew) = self.stage_new_group(collapsed, depth, suffix, next_hop)?;
        match self.try_insert_new(collapsed, slot) {
            Ok(()) => {
                self.debug_assert_slot(slot);
                Ok(BatchAnnounce {
                    grew,
                    step: BatchStep::Applied(if grew {
                        AnnounceOutcome::Resetup
                    } else {
                        AnnounceOutcome::Singleton
                    }),
                })
            }
            Err(BloomierError::NoSingleton { .. }) => {
                // Transient TCAM park; may exceed the spill budget until
                // the batch commit, which either encodes the key (rebuild)
                // or enforces the budget (degraded park / rollback).
                self.spill.push((collapsed, slot));
                self.sort_spill();
                self.debug_assert_slot(slot);
                Ok(BatchAnnounce {
                    grew,
                    step: BatchStep::Pending(slot),
                })
            }
            Err(e) => {
                self.rollback_new_group(collapsed, slot);
                Err(e.into())
            }
        }
    }

    /// Index Table partition a collapsed key routes to. Stable across
    /// re-setups and installs — the selector hash is fixed at build time —
    /// so batch rebuild units keyed on it stay disjoint no matter the
    /// commit order.
    pub(crate) fn partition_of(&self, collapsed: u128) -> usize {
        self.index.partition_of(collapsed)
    }

    /// Phase 1 of a deferred partition re-setup: the pure gather of
    /// [`SubCell::resetup_partition_with`], factored out so batch rebuild
    /// units can run it (and the candidate build) on `&self` from worker
    /// threads. Collects the partition's live keys — spillover entries of
    /// the partition (pending batch inserts included) are re-offered for
    /// placement — and schedules its dirty rows for purging.
    pub(crate) fn plan_partition_resetup(&self, part: usize) -> PartitionResetupPlan {
        let mut keys: Vec<(u128, u32)> = Vec::new();
        let mut purges: Vec<u32> = Vec::new();
        for slot in 0..self.filter.len() as u32 {
            let e = &self.filter[slot as usize];
            if !e.valid {
                continue;
            }
            if self.index.partition_of(e.key) != part {
                continue;
            }
            if self.spill_slot(e.key).is_some() {
                continue; // re-offered from the spill loop below
            }
            if e.dirty {
                purges.push(slot);
            } else {
                keys.push((e.key, slot));
            }
        }
        for &(k, s) in &self.spill {
            if self.index.partition_of(k) == part {
                if self.filter[s as usize].dirty {
                    purges.push(s);
                } else {
                    keys.push((k, s));
                }
            }
        }
        PartitionResetupPlan { part, keys, purges }
    }

    /// Phase 2 of a deferred partition re-setup: builds a candidate
    /// encoding over the gathered keys with the bounded salted retry
    /// schedule, mutating nothing. Safe to call concurrently for distinct
    /// units — all units of a batch plan and build against the same
    /// pre-commit cell state.
    pub(crate) fn build_resetup_candidate(
        &self,
        plan: &PartitionResetupPlan,
    ) -> Result<chisel_bloomier::RebuildCandidate, ChiselError> {
        let attempts = self.params.resetup_retries.max(1);
        Ok(self
            .index
            .build_partition_candidate(plan.part, &plan.keys, attempts)?)
    }

    /// Phase 3 of a deferred partition re-setup: commit or degrade, run
    /// sequentially in unit order by the engine. Mirrors the commit tail
    /// of [`SubCell::resetup_partition_with`], except that on failure the
    /// unit's pending keys (already parked in the TCAM by
    /// [`SubCell::announce_batched`]) become formal degraded parks — as
    /// many as the spill budget allows, in op order — and the rest are
    /// rolled back. `candidate` is `None` when the retry schedule failed
    /// (the SETUP_FAIL draw, taken sequentially by the engine).
    ///
    /// Returns `(committed, parked)`: whether the partition was
    /// re-encoded, and — if not — how many of the unit's pending keys
    /// were parked (a prefix of `pending`; the remainder were rolled
    /// back and must be reported as rejected).
    pub(crate) fn commit_partition_resetup(
        &mut self,
        plan: &PartitionResetupPlan,
        candidate: Option<chisel_bloomier::RebuildCandidate>,
        pending: &[(u128, u32)],
    ) -> (bool, usize) {
        self.resetups += 1;
        let part = plan.part;
        match &candidate {
            Some(c) => {
                self.recovery.resetup_attempts += c.attempts as u64;
                self.recovery.resetup_retries += c.attempts.saturating_sub(1) as u64;
            }
            None => {
                let attempts = self.params.resetup_retries.max(1);
                self.recovery.resetup_attempts += attempts as u64;
                self.recovery.resetup_retries += (attempts - 1) as u64;
            }
        }
        // Spill entries of *other* partitions survive any outcome. Counted
        // at commit time, not gather time: earlier units of the same cell
        // may have rewritten the spill since the parallel gather ran.
        // (Pending keys of not-yet-committed sibling units count against
        // the budget here — conservative, never unsound.)
        let kept = self
            .spill
            .iter()
            .filter(|&&(k, _)| self.index.partition_of(k) != part)
            .count();
        let acceptable = candidate.as_ref().is_some_and(|c| {
            kept + c.spilled.len() <= self.params.spill_capacity
                && !faultpoint::fire(faultpoint::SPILL_OVERFLOW)
        });
        if let (true, Some(c)) = (acceptable, candidate) {
            for &s in &plan.purges {
                self.purge_slot(s);
            }
            self.index.install_partition(part, c.filter, c.salt);
            {
                let index = &self.index;
                self.spill.retain(|&(k, _)| index.partition_of(k) != part);
            }
            self.spill.extend(c.spilled);
            self.sort_spill();
            // Every previously-degraded key of this partition was handed
            // to the rebuild, so its park is reclaimed (it now has a
            // healthy encoding, or is a regular spill).
            if !self.degraded.is_empty() {
                let before = self.degraded.len();
                let index = &self.index;
                self.degraded.retain(|&k| index.partition_of(k) != part);
                self.recovery.degraded_reclaims += (before - self.degraded.len()) as u64;
            }
            for &(_, slot) in pending {
                self.debug_assert_slot(slot);
            }
            return (true, pending.len());
        }
        // Degraded path: the partition keeps its pre-batch encoding and
        // only the unit's pending keys are parked — as many as the TCAM
        // budget allows (they already sit in the spill; `base` is the
        // occupancy everything else accounts for).
        self.recovery.resetup_failures += 1;
        let base = self.spill.len().saturating_sub(pending.len());
        let allowed = self
            .params
            .spill_capacity
            .saturating_sub(base)
            .min(pending.len());
        for (i, &(key, slot)) in pending.iter().enumerate() {
            if i < allowed {
                if let Err(at) = self.degraded.binary_search(&key) {
                    self.degraded.insert(at, key);
                }
                self.recovery.degraded_parks += 1;
                self.debug_assert_slot(slot);
            } else {
                self.rollback_new_group(key, slot);
            }
        }
        (false, allowed)
    }

    /// Undoes the group state [`SubCell::announce`] writes for a new
    /// collapsed key, restoring the cell to its pre-announce answers. Only
    /// valid for a slot whose key never obtained an Index Table encoding.
    fn rollback_new_group(&mut self, collapsed: u128, slot: u32) {
        let si = slot as usize;
        if let Some(f) = self.filter.get_mut(si) {
            f.valid = false;
            f.dirty = false;
        }
        if let Some(s) = self.shadows.get_mut(si) {
            s.clear();
        }
        if let Some(entry) = self.bitvec.get_mut(si) {
            entry.vector.clear();
            if let Some(block) = entry.block.take() {
                self.result.release(block);
            }
        }
        self.spill.retain(|&(k, _)| k != collapsed);
        if let Ok(i) = self.degraded.binary_search(&collapsed) {
            self.degraded.remove(i);
        }
        self.recycled.push(slot);
        self.live_groups -= 1;
        self.recovery.rollbacks += 1;
    }

    /// Applies a withdraw. Returns `true` when the prefix existed.
    pub fn withdraw(&mut self, collapsed: u128, depth: u8, suffix: u128) -> bool {
        let Some(slot) = self.slot_of(collapsed) else {
            return false;
        };
        let si = slot as usize;
        if self.filter[si].dirty {
            return false;
        }
        if self
            .shadows
            .get_mut(si)
            .expect("resolved slot")
            .remove(depth, suffix)
            .is_none()
        {
            return false;
        }
        if self.shadows[si].is_empty() {
            let spilled = self.spill_slot(collapsed).is_some();
            if self.params.flap_absorption && !spilled {
                // All expanded prefixes deleted: mark dirty and retain the
                // key in the Index Table until the next re-setup
                // (Section 4.4.1).
                self.filter.get_mut(si).expect("resolved slot").dirty = true;
            } else {
                // Drop the entry outright — in ablation mode always, and
                // for *spillover* keys even with flap absorption on. The
                // stale Index Table encoding of a dropped key is harmless
                // (the Filter Table rejects it), but a retained spillover
                // entry is not: it pins scarce TCAM capacity for a key
                // with no partition encoding behind it (a key parked by a
                // failed re-setup may never be reclaimed by a later
                // rebuild), and the TCAM is searched before the Index
                // Table, so it would shadow a fresh re-announce of the
                // same key. Drop row, spill entry and degraded park
                // together, reclaiming the capacity immediately.
                self.filter.get_mut(si).expect("resolved slot").valid = false;
                self.spill.retain(|&(k, _)| k != collapsed);
                if let Ok(i) = self.degraded.binary_search(&collapsed) {
                    self.degraded.remove(i);
                    self.recovery.degraded_reclaims += 1;
                }
                self.recycled.push(slot);
            }
            self.live_groups -= 1;
            let entry = self.bitvec.get_mut(si).expect("resolved slot");
            entry.vector.clear();
            if let Some(block) = entry.block.take() {
                self.result.release(block);
            }
        } else {
            self.regenerate(slot);
        }
        self.debug_assert_slot(slot);
        true
    }

    /// Re-sets-up the partition of `new_key` (Section 4.4.2) under the
    /// recovery policy: gather the partition's live keys *without mutating
    /// anything*, build a candidate encoding with the bounded salted retry
    /// schedule, and commit it only if its spill fits the spillover TCAM.
    /// When the retry budget fails to produce an acceptable encoding, the
    /// update degrades gracefully: the new key alone is parked in the TCAM
    /// (it still serves lookups — the TCAM is searched before the Index
    /// Table) and the partition keeps its pre-update encoding.
    ///
    /// # Errors
    ///
    /// [`ChiselError::SpilloverOverflow`] when recovery is impossible
    /// because the TCAM has no room to park the key; the caller must roll
    /// the new group back. Structural Bloomier errors propagate.
    fn resetup_partition_with(
        &mut self,
        new_key: u128,
        new_slot: u32,
    ) -> Result<AnnounceOutcome, ChiselError> {
        self.resetups += 1;
        let part = self.index.partition_of(new_key);
        // Phase 1 — pure gather. Dirty rows are only *scheduled* for
        // purging: destroying them before the rebuild is known to succeed
        // would tear the cell on the failure path.
        let mut keys: Vec<(u128, u32)> = vec![(new_key, new_slot)];
        let mut purges: Vec<u32> = Vec::new();
        for slot in 0..self.filter.len() as u32 {
            let e = &self.filter[slot as usize];
            if !e.valid || e.key == new_key {
                continue;
            }
            if self.index.partition_of(e.key) != part {
                continue;
            }
            if self.spill.iter().any(|&(k, _)| k == e.key) {
                continue; // handled below
            }
            if e.dirty {
                purges.push(slot);
            } else {
                keys.push((e.key, slot));
            }
        }
        // Spilled keys of this partition get another chance to be placed.
        let mut kept = Vec::with_capacity(self.spill.len());
        for &(k, s) in &self.spill {
            if self.index.partition_of(k) == part {
                if self.filter[s as usize].dirty {
                    purges.push(s);
                } else {
                    keys.push((k, s));
                }
            } else {
                kept.push((k, s));
            }
        }
        // Phase 2 — build a candidate without installing it. SETUP_FAIL
        // models a retry schedule that never converges.
        let attempts = self.params.resetup_retries.max(1);
        let candidate = if faultpoint::fire(faultpoint::SETUP_FAIL) {
            self.recovery.resetup_attempts += attempts as u64;
            self.recovery.resetup_retries += (attempts - 1) as u64;
            None
        } else {
            let c = self
                .index
                .build_partition_candidate(part, &keys, attempts)?;
            self.recovery.resetup_attempts += c.attempts as u64;
            self.recovery.resetup_retries += c.attempts.saturating_sub(1) as u64;
            Some(c)
        };
        // Phase 3 — commit or degrade. SPILL_OVERFLOW models every retry
        // spilling more keys than the TCAM holds.
        let acceptable = candidate.as_ref().is_some_and(|c| {
            kept.len() + c.spilled.len() <= self.params.spill_capacity
                && !faultpoint::fire(faultpoint::SPILL_OVERFLOW)
        });
        if let (true, Some(c)) = (acceptable, candidate) {
            for &s in &purges {
                self.purge_slot(s);
            }
            self.index.install_partition(part, c.filter, c.salt);
            self.spill = kept;
            self.spill.extend(c.spilled);
            self.sort_spill();
            // Every previously-degraded key of this partition was handed
            // to the rebuild, so it now has a healthy encoding (or is a
            // regular spill): its park is reclaimed.
            if !self.degraded.is_empty() {
                let before = self.degraded.len();
                let index = &self.index;
                self.degraded.retain(|&k| index.partition_of(k) != part);
                self.recovery.degraded_reclaims += (before - self.degraded.len()) as u64;
            }
            return Ok(AnnounceOutcome::Resetup);
        }
        // Degraded path: the partition keeps its pre-update encoding and
        // only the new key is parked — if the TCAM has room for it.
        self.recovery.resetup_failures += 1;
        if self.spill.len() >= self.params.spill_capacity {
            return Err(ChiselError::SpilloverOverflow {
                needed: self.spill.len() + 1,
                capacity: self.params.spill_capacity,
            });
        }
        self.spill.push((new_key, new_slot));
        self.sort_spill();
        if let Err(i) = self.degraded.binary_search(&new_key) {
            self.degraded.insert(i, new_key);
        }
        self.recovery.degraded_parks += 1;
        Ok(AnnounceOutcome::DegradedSpill)
    }

    /// Frees a dirty slot entirely (purge at re-setup time).
    fn purge_slot(&mut self, slot: u32) {
        let si = slot as usize;
        debug_assert!(self.filter[si].dirty);
        let f = self.filter.get_mut(si).expect("slot in range");
        f.valid = false;
        f.dirty = false;
        self.shadows.get_mut(si).expect("slot in range").clear();
        let entry = self.bitvec.get_mut(si).expect("slot in range");
        entry.vector.clear();
        if let Some(block) = entry.block.take() {
            self.result.release(block);
        }
        self.recycled.push(slot);
    }

    /// Doubles capacity by rebuilding the whole cell (a full — but still
    /// cell-local — re-setup). Dirty entries are purged in passing.
    fn grow(&mut self) -> Result<(), ChiselError> {
        // ALLOC_PRESSURE models the doubled-arena allocation failing —
        // before any state is touched, so the announce aborts cleanly.
        if faultpoint::fire(faultpoint::ALLOC_PRESSURE) {
            return Err(ChiselError::FaultInjected {
                site: faultpoint::ALLOC_PRESSURE,
            });
        }
        self.resetups += 1;
        let groups: Vec<(u128, GroupShadow)> = self
            .filter
            .iter()
            .zip(self.shadows.iter())
            .filter(|(e, _)| e.valid && !e.dirty)
            .map(|(e, s)| (e.key, s.clone()))
            .collect();
        let new_capacity = (self.capacity() * 2).max(64);
        let rebuilt = SubCell::build(self.range, self.width, self.params, groups, new_capacity)?;
        // The full rebuild runs setup over every live key, so previously
        // parked (degraded) keys come out with healthy encodings — or as
        // regular setup-time spills — either way their parks are gone.
        let mut recovery = self.recovery;
        recovery.degraded_reclaims += self.degraded.len() as u64;
        *self = SubCell {
            resetups: self.resetups,
            recovery,
            ..rebuilt
        };
        Ok(())
    }

    /// Exports the cell's memories as a hardware image (see
    /// [`crate::HardwareImage`]).
    pub fn export_image(&self) -> crate::image::CellImage {
        crate::image::CellImage {
            base: self.range.base,
            stride: self.range.stride,
            selector: self.index.selector().clone(),
            index_parts: (0..self.index.d())
                .map(|i| {
                    let part = self.index.part(i);
                    crate::image::IndexPartImage {
                        words: part.packed().clone(),
                        family: part.family().clone(),
                    }
                })
                .collect(),
            filter: self
                .filter
                .iter()
                .map(|e| crate::image::FilterWord {
                    key: e.key,
                    valid: e.valid,
                    dirty: e.dirty,
                })
                .collect(),
            bitvec: self
                .bitvec
                .iter()
                .map(|e| crate::image::BitVectorWord {
                    vector: e.vector.clone(),
                    pointer: e.block.map(|b| b.ptr),
                })
                .collect(),
            result: self.result.words(),
            spill: self.spill.clone(),
        }
    }

    /// Enumerates `(collapsed_key, depth, suffix, next_hop)` of every live
    /// original prefix — used by verification and serialization.
    pub fn iter_routes(&self) -> impl Iterator<Item = (u128, u8, u128, NextHop)> + '_ {
        self.filter
            .iter()
            .zip(self.shadows.iter())
            .filter(|(e, _)| e.valid && !e.dirty)
            .flat_map(|(e, s)| s.iter().map(move |(d, suf, nh)| (e.key, d, suf, nh)))
    }

    /// Re-walks the whole cell against the invariants of
    /// [`crate::verify`]: collision-free key→slot bindings, pointer
    /// ranges and packing width, per-leaf rank/Result-Table consistency,
    /// drained dirty rows, and slot/spill accounting.
    pub(crate) fn verify(&self, cell: usize, report: &mut VerifyReport) {
        let cv = Some(cell);
        let n = self.capacity();
        if self.index.value_bits() != addr_bits(n) {
            report.push(
                cv,
                None,
                "index-entry-width",
                format!(
                    "index packs {} bits/entry, expected ceil(log2 {n}) = {}",
                    self.index.value_bits(),
                    addr_bits(n)
                ),
            );
        }
        let mut keys: HashMap<u128, u32> = HashMap::new();
        let mut valid_rows = 0usize;
        let mut live_rows = 0usize;
        // (ptr, capacity, slot) of every live Result Table block, for the
        // overlap check.
        let mut blocks: Vec<(u32, usize, u32)> = Vec::new();
        for slot in 0..n as u32 {
            let f = &self.filter[slot as usize];
            if f.valid {
                valid_rows += 1;
                if let Some(prev) = keys.insert(f.key, slot) {
                    report.push(
                        cv,
                        Some(slot),
                        "duplicate-key",
                        format!("key {:#x} also stored at slot {prev} (collision)", f.key),
                    );
                }
                if !f.dirty {
                    live_rows += 1;
                }
            }
            if let Some(b) = self.bitvec[slot as usize].block {
                blocks.push((b.ptr, b.capacity(), slot));
            }
            self.verify_slot(cell, slot, report);
        }
        if live_rows != self.live_groups {
            report.push(
                cv,
                None,
                "live-group-count",
                format!(
                    "live_groups counter {} but {live_rows} live rows",
                    self.live_groups
                ),
            );
        }
        // Every non-valid row must be reachable by `claim_slot`: either
        // never claimed (>= next_fresh) or on the recycled list.
        let free_expected = self.recycled.len() + (n - (self.next_fresh as usize).min(n));
        if n - valid_rows != free_expected {
            report.push(
                cv,
                None,
                "slot-accounting",
                format!(
                    "{} free rows but {} recycled + {} fresh",
                    n - valid_rows,
                    self.recycled.len(),
                    n - (self.next_fresh as usize).min(n)
                ),
            );
        }
        for &s in &self.recycled {
            if s as usize >= n || self.filter[s as usize].valid || s >= self.next_fresh {
                report.push(
                    cv,
                    Some(s),
                    "recycled-slot",
                    "recycled slot is live or was never claimed".into(),
                );
            }
        }
        let mut spill_keys: HashMap<u128, u32> = HashMap::new();
        for &(k, s) in &self.spill {
            if let Some(prev) = spill_keys.insert(k, s) {
                report.push(
                    cv,
                    Some(s),
                    "duplicate-spill-key",
                    format!("key {k:#x} also spilled to slot {prev}"),
                );
            }
            if s as usize >= n {
                report.push(
                    cv,
                    Some(s),
                    "spill-slot-range",
                    format!("spill slot {s} outside filter depth {n}"),
                );
            } else {
                let f = &self.filter[s as usize];
                if !f.valid || f.key != k {
                    report.push(
                        cv,
                        Some(s),
                        "spill-binding",
                        format!("spilled key {k:#x} not stored at its slot"),
                    );
                }
            }
        }
        if self.spill.len() > self.params.spill_capacity {
            report.push(
                cv,
                None,
                "spill-capacity",
                format!(
                    "spillover TCAM holds {} entries, capacity {}",
                    self.spill.len(),
                    self.params.spill_capacity
                ),
            );
        }
        // Degraded parks are spill entries by construction: a parked key
        // with no TCAM entry would be unreachable (its partition has no
        // encoding for it), i.e. a silently-dropped route.
        if !self.degraded.windows(2).all(|w| w[0] < w[1]) {
            report.push(
                cv,
                None,
                "degraded-order",
                "degraded key list is not sorted/deduplicated".into(),
            );
        }
        for &k in &self.degraded {
            if !spill_keys.contains_key(&k) {
                report.push(
                    cv,
                    None,
                    "degraded-not-spilled",
                    format!("degraded key {k:#x} has no spillover TCAM entry"),
                );
            }
        }
        // Live blocks must be pairwise disjoint and inside the table —
        // an overlap means the allocator double-handed a region and two
        // groups are scribbling over each other's next hops.
        blocks.sort_unstable();
        for pair in blocks.windows(2) {
            let ((a_ptr, a_cap, a_slot), (b_ptr, _, b_slot)) = (pair[0], pair[1]);
            if a_ptr as usize + a_cap > b_ptr as usize {
                report.push(
                    cv,
                    Some(b_slot),
                    "block-overlap",
                    format!("block at {b_ptr} overlaps slot {a_slot}'s block [{a_ptr}, {a_ptr}+{a_cap})"),
                );
            }
        }
        if let Some(&(ptr, cap, slot)) = blocks.last() {
            if ptr as usize + cap > self.result.len() {
                report.push(
                    cv,
                    Some(slot),
                    "result-out-of-bounds",
                    format!(
                        "block [{ptr}, {ptr}+{cap}) exceeds result table of {}",
                        self.result.len()
                    ),
                );
            }
        }
    }

    /// The per-slot half of [`SubCell::verify`]: data-path binding plus
    /// shadow ↔ bit-vector ↔ Result Table consistency for one row. Cheap
    /// enough (`O(2^stride)`) to re-run after every incremental update.
    pub(crate) fn verify_slot(&self, cell: usize, slot: u32, report: &mut VerifyReport) {
        let cv = Some(cell);
        let sv = Some(slot);
        let si = slot as usize;
        let f = &self.filter[si];
        let bv = &self.bitvec[si];
        let shadow = &self.shadows[si];
        if f.dirty && !f.valid {
            report.push(
                cv,
                sv,
                "dirty-invalid",
                "dirty bit set on an invalid row".into(),
            );
        }
        if f.valid {
            // Section 4.1/4.2: the full front end (spillover TCAM, then
            // Index Table decode validated by the Filter Table) must bind
            // this key back to this very row.
            match self.slot_of(f.key) {
                Some(s) if s == slot => {}
                other => report.push(
                    cv,
                    sv,
                    "data-path-binding",
                    format!("key {:#x} resolves to {other:?}", f.key),
                ),
            }
            if !self.spill.iter().any(|&(k, _)| k == f.key) {
                let p = self.index.lookup(f.key);
                if p as usize >= self.capacity() {
                    report.push(
                        cv,
                        sv,
                        "index-pointer-range",
                        format!("decoded pointer {p} outside [0, {})", self.capacity()),
                    );
                }
            }
        }
        if f.valid && !f.dirty {
            report.live_slots += 1;
            report.routes += shadow.len();
            if shadow.is_empty() {
                report.push(
                    cv,
                    sv,
                    "empty-live-group",
                    "live row has an empty shadow".into(),
                );
                return;
            }
            // Section 4.3: re-resolve the group's subtree and compare
            // leaf-by-leaf against the bit-vector and the compacted
            // Result Table block.
            let hops = leaf_hops(shadow, self.range.stride);
            let ones = hops.iter().filter(|h| h.is_some()).count();
            if bv.vector.count_ones() != ones {
                report.push(
                    cv,
                    sv,
                    "popcount-mismatch",
                    format!(
                        "vector popcount {} but shadow covers {ones} leaves",
                        bv.vector.count_ones()
                    ),
                );
            }
            let Some(block) = bv.block else {
                report.push(
                    cv,
                    sv,
                    "missing-block",
                    format!("{ones} covered leaves but no result block"),
                );
                return;
            };
            if block.capacity() < ones {
                report.push(
                    cv,
                    sv,
                    "block-overflow",
                    format!("block capacity {} below occupancy {ones}", block.capacity()),
                );
                return;
            }
            if block.ptr as usize + block.capacity() > self.result.len() {
                report.push(
                    cv,
                    sv,
                    "result-out-of-bounds",
                    format!(
                        "block [{}, {}+{}) exceeds result table of {}",
                        block.ptr,
                        block.ptr,
                        block.capacity(),
                        self.result.len()
                    ),
                );
                return;
            }
            for (leaf, hop) in hops.iter().enumerate() {
                if bv.vector.get(leaf) != hop.is_some() {
                    report.push(
                        cv,
                        sv,
                        "leaf-bit-mismatch",
                        format!("leaf {leaf}: bit {} vs shadow {hop:?}", bv.vector.get(leaf)),
                    );
                    continue;
                }
                if let Some(expected) = hop {
                    let rank = bv.vector.rank(leaf);
                    let stored = self.result.read(block, rank - 1);
                    if stored != *expected {
                        report.push(
                            cv,
                            sv,
                            "next-hop-mismatch",
                            format!("leaf {leaf} rank {rank}: stored {stored}, shadow {expected}"),
                        );
                    }
                }
            }
        } else {
            // Dirty (Section 4.4.1) and free rows must be fully drained:
            // empty shadow, zero vector, released block.
            if !shadow.is_empty() {
                report.push(
                    cv,
                    sv,
                    "stale-shadow",
                    format!("{} prefixes linger on a non-live row", shadow.len()),
                );
            }
            if !bv.vector.is_zero() {
                report.push(
                    cv,
                    sv,
                    "stale-vector",
                    format!(
                        "{} leaf bit(s) set on a non-live row",
                        bv.vector.count_ones()
                    ),
                );
            }
            if bv.block.is_some() {
                report.push(
                    cv,
                    sv,
                    "stale-block",
                    "result block held by a non-live row".into(),
                );
            }
        }
    }

    /// Debug-build hook: re-verifies the slot an incremental update just
    /// touched, so an update that corrupts a row fails at the update —
    /// not at some later lookup.
    #[cfg(debug_assertions)]
    fn debug_assert_slot(&self, slot: u32) {
        let mut report = VerifyReport::default();
        self.verify_slot(self.range.base as usize, slot, &mut report);
        assert!(
            report.is_ok(),
            "update left slot {slot} of cell base {} inconsistent:\n{report}",
            self.range.base
        );
    }

    #[cfg(not(debug_assertions))]
    #[inline]
    fn debug_assert_slot(&self, _slot: u32) {}
}

fn cell_seed(seed: u64, base: u8) -> u64 {
    seed ^ ((base as u64) << 32).wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Resolves the next hop of every leaf in a group's `stride`-bit subtree —
/// the pure, slot-independent part of a fill, safe to compute on any
/// worker thread.
fn leaf_hops(shadow: &GroupShadow, stride: u8) -> Vec<Option<NextHop>> {
    let leaves = 1usize << stride;
    let mut hops = Vec::with_capacity(leaves);
    for leaf in 0..leaves {
        hops.push(shadow.resolve_leaf(leaf, stride));
    }
    hops
}
