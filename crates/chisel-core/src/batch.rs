//! Batched update planning (paper Section 4.4, extended): a window of
//! route updates is coalesced to its net per-prefix effect before any
//! table is touched, so a withdraw/announce flap or a burst of next-hop
//! churn costs one logical change instead of many — the batch-window
//! generalization of the per-prefix dirty-bit flap absorption in
//! [`crate::RecentWithdrawals`].
//!
//! The planner is pure bookkeeping: [`UpdateBatch`] ingests events,
//! [`BatchPlan`] is the coalesced residue, and the engine
//! ([`crate::ChiselLpm::apply_batch`]) applies the residue incrementally,
//! deferring every re-setup-requiring insert so all partition rebuilds of
//! the window run in parallel and the whole window publishes as one
//! snapshot generation.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use chisel_prefix::{NextHop, Prefix};

use crate::update::UpdateStats;

/// One route update, engine-level: the same shape as the workload
/// generator's `UpdateEvent`, duplicated here so `chisel-core` does not
/// depend on `chisel-workloads` (callers convert trivially).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteUpdate {
    /// BGP announce: insert the prefix or update its next hop.
    Announce(Prefix, NextHop),
    /// BGP withdraw: remove the prefix if present (no-op otherwise).
    Withdraw(Prefix),
}

impl RouteUpdate {
    /// The prefix this update targets.
    #[inline]
    pub fn prefix(&self) -> Prefix {
        match *self {
            RouteUpdate::Announce(p, _) => p,
            RouteUpdate::Withdraw(p) => p,
        }
    }
}

/// One residual operation of a coalesced window: the last-writer update
/// for its prefix, plus the positions (into the ingested window) of every
/// raw event it absorbed — its own included.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedOp {
    /// The net-effect update for this prefix.
    pub op: RouteUpdate,
    /// Window positions of the raw events this op stands for, in arrival
    /// order. `absorbed.len() - 1` events were coalesced away.
    pub absorbed: Vec<usize>,
}

/// The coalesced residue of an update window: at most one operation per
/// prefix, in first-touch order.
///
/// Correctness rests on two facts. Per prefix, the final routing state
/// depends only on the *last* update (announce/withdraw/announce collapses
/// to the final announce; next-hop churn collapses to the last write; an
/// announce followed by a withdraw collapses to the withdraw, which is a
/// safe no-op if the prefix was absent). Across distinct prefixes the
/// operations commute — they insert/remove different keys — so applying
/// the residue in any fixed order yields the same final route map as the
/// raw sequence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchPlan {
    /// Residual operations, first-touch order.
    pub ops: Vec<PlannedOp>,
    /// Number of raw events ingested into the plan.
    pub ingested: usize,
}

impl BatchPlan {
    /// Coalesces a window of events into its per-prefix net effect.
    pub fn of(events: &[RouteUpdate]) -> BatchPlan {
        let mut ops: Vec<PlannedOp> = Vec::new();
        let mut by_prefix: HashMap<Prefix, usize> = HashMap::with_capacity(events.len());
        for (i, ev) in events.iter().enumerate() {
            match by_prefix.entry(ev.prefix()) {
                Entry::Occupied(o) => {
                    let planned = &mut ops[*o.get()];
                    planned.op = *ev;
                    planned.absorbed.push(i);
                }
                Entry::Vacant(v) => {
                    v.insert(ops.len());
                    ops.push(PlannedOp {
                        op: *ev,
                        absorbed: vec![i],
                    });
                }
            }
        }
        BatchPlan {
            ops,
            ingested: events.len(),
        }
    }

    /// Number of raw events absorbed into other events' residual ops.
    pub fn coalesced(&self) -> usize {
        self.ingested - self.ops.len()
    }

    /// Number of residual operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the plan holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// A window of route updates accumulating toward one batched apply — the
/// planner front end. Feed it events as they arrive, then hand
/// [`UpdateBatch::events`] to [`crate::SharedChisel::apply_batch`] (or
/// call [`UpdateBatch::plan`] to inspect the coalesced residue first).
#[derive(Debug, Clone, Default)]
pub struct UpdateBatch {
    events: Vec<RouteUpdate>,
}

impl UpdateBatch {
    /// An empty window.
    pub fn new() -> Self {
        UpdateBatch::default()
    }

    /// Appends one event to the window.
    pub fn push(&mut self, event: RouteUpdate) {
        self.events.push(event);
    }

    /// Number of raw events in the window.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The raw events, in arrival order.
    pub fn events(&self) -> &[RouteUpdate] {
        &self.events
    }

    /// Drains the window, returning the raw events.
    pub fn take(&mut self) -> Vec<RouteUpdate> {
        std::mem::take(&mut self.events)
    }

    /// Coalesces the window into its per-prefix net effect.
    pub fn plan(&self) -> BatchPlan {
        BatchPlan::of(&self.events)
    }
}

impl Extend<RouteUpdate> for UpdateBatch {
    fn extend<T: IntoIterator<Item = RouteUpdate>>(&mut self, iter: T) {
        self.events.extend(iter);
    }
}

impl FromIterator<RouteUpdate> for UpdateBatch {
    fn from_iter<T: IntoIterator<Item = RouteUpdate>>(iter: T) -> Self {
        UpdateBatch {
            events: Vec::from_iter(iter),
        }
    }
}

/// What one [`crate::ChiselLpm::apply_batch`] call did: the per-window
/// counterpart of the cumulative [`crate::BatchStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Raw events offered to the window.
    pub ingested: usize,
    /// Raw events absorbed by per-prefix coalescing (never touched a
    /// table).
    pub coalesced: usize,
    /// Residual operations actually applied.
    pub applied_ops: usize,
    /// Window positions (sorted) of raw events the engine did *not*
    /// apply: family/length-invalid events, plus events of residual ops
    /// rolled back because a failed re-setup found no spillover-TCAM room.
    /// The engine state reflects exactly the window minus these events.
    pub rejected_events: Vec<usize>,
    /// Classification tallies of the applied residual ops (residual ops,
    /// not raw events — coalesced-away events are not classified).
    pub kinds: UpdateStats,
    /// Partition-rebuild units executed for this window (each unit covers
    /// every deferred insert landing in one (cell, partition); the units
    /// build concurrently).
    pub parallel_resetups: usize,
    /// Inline re-setups the batch avoided: deferred inserts resolved by
    /// sharing a rebuild unit with another insert, or swept up by a
    /// capacity-doubling full cell rebuild that was due anyway.
    pub resetups_saved: u64,
}

impl BatchReport {
    /// Raw events the engine accepted (applied or coalesced into an
    /// applied op).
    pub fn accepted(&self) -> usize {
        self.ingested - self.rejected_events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn nh(i: u32) -> NextHop {
        NextHop::new(i)
    }

    #[test]
    fn empty_window_plans_empty() {
        let plan = BatchPlan::of(&[]);
        assert!(plan.is_empty());
        assert_eq!(plan.coalesced(), 0);
    }

    #[test]
    fn distinct_prefixes_pass_through() {
        let evs = [
            RouteUpdate::Announce(p("10.0.0.0/8"), nh(1)),
            RouteUpdate::Withdraw(p("11.0.0.0/8")),
            RouteUpdate::Announce(p("12.0.0.0/8"), nh(2)),
        ];
        let plan = BatchPlan::of(&evs);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.coalesced(), 0);
        for (i, op) in plan.ops.iter().enumerate() {
            assert_eq!(op.op, evs[i]);
            assert_eq!(op.absorbed, vec![i]);
        }
    }

    #[test]
    fn flap_collapses_to_final_announce() {
        // announce/withdraw/announce on one prefix: net effect is the
        // last announce alone — the withdraw never touches a table.
        let evs = [
            RouteUpdate::Announce(p("10.0.0.0/8"), nh(1)),
            RouteUpdate::Withdraw(p("10.0.0.0/8")),
            RouteUpdate::Announce(p("10.0.0.0/8"), nh(2)),
        ];
        let plan = BatchPlan::of(&evs);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.coalesced(), 2);
        assert_eq!(
            plan.ops[0].op,
            RouteUpdate::Announce(p("10.0.0.0/8"), nh(2))
        );
        assert_eq!(plan.ops[0].absorbed, vec![0, 1, 2]);
    }

    #[test]
    fn next_hop_churn_collapses_to_last_write() {
        let evs: Vec<RouteUpdate> = (0..10)
            .map(|i| RouteUpdate::Announce(p("10.0.0.0/8"), nh(i)))
            .collect();
        let plan = BatchPlan::of(&evs);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.coalesced(), 9);
        assert_eq!(
            plan.ops[0].op,
            RouteUpdate::Announce(p("10.0.0.0/8"), nh(9))
        );
    }

    #[test]
    fn announce_then_withdraw_collapses_to_withdraw() {
        let evs = [
            RouteUpdate::Announce(p("10.0.0.0/8"), nh(1)),
            RouteUpdate::Withdraw(p("10.0.0.0/8")),
        ];
        let plan = BatchPlan::of(&evs);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.ops[0].op, RouteUpdate::Withdraw(p("10.0.0.0/8")));
        assert_eq!(plan.ops[0].absorbed, vec![0, 1]);
    }

    #[test]
    fn first_touch_order_is_preserved() {
        let evs = [
            RouteUpdate::Announce(p("10.0.0.0/8"), nh(1)),
            RouteUpdate::Announce(p("11.0.0.0/8"), nh(2)),
            RouteUpdate::Announce(p("10.0.0.0/8"), nh(3)),
        ];
        let plan = BatchPlan::of(&evs);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.ops[0].op.prefix(), p("10.0.0.0/8"));
        assert_eq!(plan.ops[1].op.prefix(), p("11.0.0.0/8"));
    }

    #[test]
    fn update_batch_accumulates_and_drains() {
        let mut batch = UpdateBatch::new();
        assert!(batch.is_empty());
        batch.push(RouteUpdate::Announce(p("10.0.0.0/8"), nh(1)));
        batch.extend([RouteUpdate::Withdraw(p("10.0.0.0/8"))]);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.plan().len(), 1);
        let events = batch.take();
        assert_eq!(events.len(), 2);
        assert!(batch.is_empty());
    }
}
