//! Exhaustive model-checking of the `SnapshotCell` pin/publish/retire/
//! reclaim protocol (the machine-checked counterpart of the prose
//! memory-ordering argument in `src/snapshot.rs`).
//!
//! Only compiled under `RUSTFLAGS="--cfg loom_lite"`, which also swaps
//! `SnapshotCell`'s atomics for the virtual `loom-lite` shims. Each test
//! explores *every* interleaving within the bounded-preemption schedule
//! space (default budget: 2 preemptions; override with
//! `LOOM_LITE_MAX_PREEMPTIONS`). The loom-lite pointer-lifecycle tracker
//! fails any schedule with a use-after-free (snapshot reclaimed while a
//! reader pin is live), a double-free, or a leaked snapshot — all checked
//! *before* the real `Arc` drop runs, so buggy schedules cannot corrupt
//! memory while being explored.
#![cfg(loom_lite)]

use chisel_core::snapshot::SnapshotCell;
use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;

/// Payload with a drop counter and a derived check word, so a torn or
/// reclaimed read shows up as a broken invariant rather than silent UB.
struct Payload {
    value: u64,
    check: u64,
    drops: Arc<AtomicUsize>,
}

impl Payload {
    fn new(value: u64, drops: Arc<AtomicUsize>) -> Arc<Self> {
        Arc::new(Payload {
            value,
            check: value.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            drops,
        })
    }

    fn assert_intact(&self) {
        assert_eq!(
            self.check,
            self.value.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            "snapshot payload torn or reclaimed under a live pin"
        );
    }
}

impl Drop for Payload {
    fn drop(&mut self) {
        self.drops.fetch_add(1, SeqCst);
    }
}

/// Two concurrent readers against one writer publishing once: across
/// every schedule, both readers see an intact snapshot that is either
/// the initial or the published value, the final load observes the
/// publication (no lost snapshot), and every payload drops exactly once.
#[test]
fn two_readers_one_writer_schedules_are_safe() {
    loom_lite::model(|| {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(SnapshotCell::new(Payload::new(1, drops.clone())));

        let writer = {
            let cell = Arc::clone(&cell);
            let drops = drops.clone();
            loom_lite::thread::spawn(move || {
                cell.store(Payload::new(2, drops));
            })
        };
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let cell = Arc::clone(&cell);
                loom_lite::thread::spawn(move || {
                    let g = cell.load();
                    g.assert_intact();
                    assert!(g.value == 1 || g.value == 2, "phantom snapshot");
                    g.value
                })
            })
            .collect();

        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        // The writer has joined: its publication must be visible.
        let g = cell.load();
        g.assert_intact();
        assert_eq!(g.value, 2, "lost snapshot: publication not visible");
        drop(g);
        assert_eq!(cell.epoch(), 2);

        drop(cell);
        assert_eq!(
            drops.load(SeqCst),
            2,
            "every snapshot reclaimed exactly once"
        );
    });
}

/// One reader racing two sequential publications from the same writer:
/// the reader's two loads are intact and monotonically non-decreasing
/// (snapshots never go backwards), the final state is the last
/// publication, and all three payloads drop exactly once.
#[test]
fn one_reader_two_publications_schedules_are_safe() {
    loom_lite::model(|| {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(SnapshotCell::new(Payload::new(1, drops.clone())));

        let writer = {
            let cell = Arc::clone(&cell);
            let drops = drops.clone();
            loom_lite::thread::spawn(move || {
                cell.store(Payload::new(2, drops.clone()));
                cell.store(Payload::new(3, drops));
            })
        };
        let reader = {
            let cell = Arc::clone(&cell);
            loom_lite::thread::spawn(move || {
                let first = {
                    let g = cell.load();
                    g.assert_intact();
                    g.value
                };
                let second = {
                    let g = cell.load();
                    g.assert_intact();
                    g.value
                };
                assert!(first >= 1 && first <= 3, "phantom snapshot");
                assert!(second >= first, "snapshot went backwards");
            })
        };

        writer.join().unwrap();
        reader.join().unwrap();
        let g = cell.load();
        g.assert_intact();
        assert_eq!(g.value, 3, "lost snapshot: last publication not visible");
        drop(g);
        assert_eq!(cell.epoch(), 3);

        drop(cell);
        assert_eq!(
            drops.load(SeqCst),
            3,
            "every snapshot reclaimed exactly once"
        );
    });
}

/// An owned snapshot (`load_owned`) taken before a publication stays
/// valid after the cell reclaims the underlying slot — across every
/// schedule of the owner against the writer.
#[test]
fn owned_snapshot_survives_reclaim_in_all_schedules() {
    loom_lite::model(|| {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(SnapshotCell::new(Payload::new(7, drops.clone())));

        let owner = {
            let cell = Arc::clone(&cell);
            loom_lite::thread::spawn(move || {
                let snap = cell.load_owned();
                snap.assert_intact();
                snap.value
            })
        };
        cell.store(Payload::new(8, drops.clone()));
        let seen = owner.join().unwrap();
        assert!(seen == 7 || seen == 8, "phantom snapshot");

        drop(cell);
        assert_eq!(
            drops.load(SeqCst),
            2,
            "every snapshot reclaimed exactly once"
        );
    });
}
