//! Exhaustive model-checking of `CachedReader` + `FlowCache` generation
//! coherence against concurrent snapshot publishes — the protocol PR 6
//! shipped with only schedule-sampling tests.
//!
//! Only compiled under `RUSTFLAGS="--cfg loom_lite"`, which swaps
//! `SnapshotCell`'s atomics for the virtual shims, so every pin, load
//! and publish is a scheduling point and the DFS explores every
//! reader/writer interleaving within the preemption budget. The
//! property under check is the one the dataplane's differential replay
//! leans on: `lookup_batch_pinned` returns a generation `g`, and every
//! answer in the batch must equal the routing state *at exactly `g`* —
//! a cache entry surviving a publish (stale hit) or a torn batch
//! (answers from two generations) both fail the assertion on the
//! schedule that exposes them.
#![cfg(loom_lite)]

use chisel_core::{ChiselConfig, SharedChisel};
use chisel_prefix::{AddressFamily, Key, NextHop, RoutingTable};

fn key(v: u128) -> Key {
    Key::from_raw(AddressFamily::V4, v)
}

/// A tiny engine (one /8) built sequentially: the model closure re-runs
/// once per explored schedule, so the build must be cheap and must not
/// spawn native worker threads behind the virtual scheduler's back.
fn tiny_shared() -> SharedChisel {
    let mut t = RoutingTable::new_v4();
    t.insert("10.0.0.0/8".parse().unwrap(), NextHop::new(1));
    SharedChisel::build(&t, ChiselConfig::ipv4().build_threads(1)).unwrap()
}

/// The answers the routing state holds at generation `g`: the /8 is
/// always there; the /16 exists only from generation 1 on.
fn expected_at(g: u64, inside_16: bool) -> Option<NextHop> {
    if inside_16 && g >= 1 {
        Some(NextHop::new(2))
    } else {
        Some(NextHop::new(1))
    }
}

/// One cached reader racing one publish: across every schedule, each
/// batch's answers must match the batch's own reported generation, the
/// generation must never go backwards, and a batch after the writer
/// joins must see the publication.
#[test]
fn batch_answers_match_their_pinned_generation() {
    loom_lite::model(|| {
        let shared = tiny_shared();
        // Probe A is inside the /16 the writer publishes, so its answer
        // changes at generation 1; probe B sits only under the /8.
        let probes = [key(0x0A01_0000), key(0x0AFF_0001)];
        let mut reader = shared.reader_with_capacity(8);

        let writer = {
            let shared = shared.clone();
            loom_lite::thread::spawn(move || {
                shared
                    .announce("10.1.0.0/16".parse().unwrap(), NextHop::new(2))
                    .unwrap();
            })
        };

        let mut out = [None, None];
        // First batch warms the cache at whatever generation it pins.
        let g1 = reader.lookup_batch_pinned(&probes, &mut out);
        assert!(g1 <= 1, "phantom generation {g1}");
        assert_eq!(out[0], expected_at(g1, true), "probe A torn at g{g1}");
        assert_eq!(out[1], expected_at(g1, false), "probe B torn at g{g1}");

        // Second batch may observe the publish mid-run; stale cache
        // entries from g1 must not leak into a batch stamped g2.
        let g2 = reader.lookup_batch_pinned(&probes, &mut out);
        assert!(g2 >= g1, "generation went backwards: {g1} -> {g2}");
        assert_eq!(out[0], expected_at(g2, true), "stale cached A at g{g2}");
        assert_eq!(out[1], expected_at(g2, false), "stale cached B at g{g2}");

        writer.join().unwrap();
        // The writer joined: its publication must be visible and the
        // cache must revalidate against it.
        let g3 = reader.lookup_batch_pinned(&probes, &mut out);
        assert_eq!(g3, 1, "publication lost after join");
        assert_eq!(out[0], expected_at(1, true));
        assert_eq!(out[1], expected_at(1, false));

        // Hit/miss accounting never loses a lane, in any interleaving.
        let cache = reader.cache();
        assert_eq!(
            cache.hits() + cache.misses(),
            3 * probes.len() as u64,
            "flow-cache counters lost a lane"
        );
    });
}

/// Two readers with private caches across one publish: coherence is
/// per-reader (no shared cache state). One reader races the writer
/// through every interleaving; the other warms its cache strictly
/// before the publish and must revalidate strictly after it — the
/// wholesale-invalidation edge of the generation stamp.
///
/// (The two phases are deliberately not three-way concurrent: under
/// `loom_lite` the `SnapshotCell` has [`SLOTS`] = 2 reader pin slots,
/// and the writer's `load_owned` pins too, so a third concurrent pinner
/// would spin against an exhausted preemption budget and trip the
/// step bound, not find anything.)
#[test]
fn private_caches_stay_coherent_independently() {
    loom_lite::model(|| {
        let shared = tiny_shared();
        let probe = key(0x0AFF_0001);
        let want = |g: u64| {
            if g >= 1 {
                Some(NextHop::new(3))
            } else {
                Some(NextHop::new(1))
            }
        };

        // Phase 1 (no concurrency): warm the main reader's cache at
        // generation 0.
        let mut r = shared.reader_with_capacity(4);
        let mut out = [None];
        let ga = r.lookup_batch_pinned(&[probe], &mut out);
        assert_eq!(ga, 0);
        assert_eq!(out[0], want(0));

        // Phase 2: the other reader races the publish — every
        // interleaving of its pin against the writer's clone/publish.
        let writer = {
            let shared = shared.clone();
            loom_lite::thread::spawn(move || {
                shared
                    .announce("10.255.0.0/16".parse().unwrap(), NextHop::new(3))
                    .unwrap();
            })
        };
        let other = {
            let shared = shared.clone();
            loom_lite::thread::spawn(move || {
                let mut r = shared.reader_with_capacity(4);
                let mut out = [None];
                let g = r.lookup_batch_pinned(&[probe], &mut out);
                assert_eq!(out[0], want(g), "racing reader incoherent at g{g}");
            })
        };
        writer.join().unwrap();
        other.join().unwrap();

        // Phase 3: the main reader's generation-0 cache entry is stale
        // now; the stamp must force revalidation, not serve hop 1.
        let gb = r.lookup_batch_pinned(&[probe], &mut out);
        assert_eq!(gb, 1, "publication not visible after join");
        assert_eq!(out[0], want(1), "stale cache hit served after publish");
        assert_eq!(shared.generation(), 1);
    });
}
