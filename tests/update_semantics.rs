//! Scenario tests for the incremental update machinery of Section 4.4:
//! withdraw/announce semantics, dirty-bit route flaps, classification,
//! and the partition-bounded re-setup path. After every scenario the
//! invariant verifier re-walks the engine and its exported hardware
//! image — an update sequence must never leave the tables structurally
//! inconsistent, even when every lookup it was tested with still works.

use chisel::core::{verify_image, FlowCache, SharedChisel, UpdateKind};
use chisel::{AddressFamily, ChiselConfig, ChiselLpm, Key, NextHop, Prefix, RoutingTable};
use chisel_prefix::bits::mask;

/// Runs both verifier passes (engine-side and image-side) and fails the
/// test with the full violation report on any broken invariant.
#[track_caller]
fn assert_verified(e: &ChiselLpm) {
    let report = e.verify();
    assert!(report.is_ok(), "engine invariants violated:\n{report}");
    let image = verify_image(&e.export_image());
    assert!(image.is_ok(), "image invariants violated:\n{image}");
}

fn p(s: &str) -> Prefix {
    s.parse().unwrap()
}

fn k(s: &str) -> Key {
    s.parse().unwrap()
}

fn nh(i: u32) -> NextHop {
    NextHop::new(i)
}

fn engine_with(routes: &[(&str, u32)]) -> ChiselLpm {
    let mut t = RoutingTable::new_v4();
    for &(s, h) in routes {
        t.insert(p(s), nh(h));
    }
    ChiselLpm::build(&t, ChiselConfig::ipv4()).unwrap()
}

#[test]
fn withdraw_falls_back_to_next_longest_cover() {
    // Paper Figure 7 semantics: removing a prefix re-points its leaves at
    // the next-longest prefix p''' in the same subtree.
    let mut e = engine_with(&[
        ("10.0.0.0/8", 1),
        ("10.1.0.0/16", 2),
        ("10.1.128.0/17", 3),
        ("10.1.128.0/18", 4),
    ]);
    assert_eq!(e.lookup(k("10.1.128.1")), Some(nh(4)));
    e.withdraw(p("10.1.128.0/18")).unwrap();
    assert_eq!(e.lookup(k("10.1.128.1")), Some(nh(3)));
    e.withdraw(p("10.1.128.0/17")).unwrap();
    assert_eq!(e.lookup(k("10.1.128.1")), Some(nh(2)));
    e.withdraw(p("10.1.0.0/16")).unwrap();
    assert_eq!(e.lookup(k("10.1.128.1")), Some(nh(1)));
    assert_verified(&e);
}

#[test]
fn announce_respects_longer_existing_prefixes() {
    // Section 4.4.2: announcing a shorter prefix must NOT override leaves
    // covered by a longer one.
    let mut e = engine_with(&[("10.1.2.0/26", 9)]);
    e.announce(p("10.1.2.0/24"), nh(1)).unwrap();
    assert_eq!(
        e.lookup(k("10.1.2.10")),
        Some(nh(9)),
        "/26 must keep precedence"
    );
    assert_eq!(
        e.lookup(k("10.1.2.200")),
        Some(nh(1)),
        "/24 covers the rest"
    );
}

#[test]
fn announce_existing_changes_next_hop_only() {
    let mut e = engine_with(&[("10.0.0.0/8", 1)]);
    let kind = e.announce(p("10.0.0.0/8"), nh(2)).unwrap();
    assert_eq!(kind, UpdateKind::NextHopChange);
    assert_eq!(e.lookup(k("10.5.5.5")), Some(nh(2)));
    assert_eq!(e.len(), 1);
}

#[test]
fn flap_classification_both_mechanisms() {
    // (a) dirty-bit restore: sole member of a group withdrawn, re-announced.
    let mut e = engine_with(&[("10.1.2.0/24", 1), ("99.0.0.0/8", 2)]);
    e.withdraw(p("10.1.2.0/24")).unwrap();
    assert_eq!(
        e.announce(p("10.1.2.0/24"), nh(3)).unwrap(),
        UpdateKind::RouteFlap
    );

    // (b) bit-vector restore: one of two group members flaps.
    let mut e = engine_with(&[("10.1.2.0/24", 1), ("10.1.2.0/25", 2)]);
    e.withdraw(p("10.1.2.0/25")).unwrap();
    assert_eq!(
        e.announce(p("10.1.2.0/25"), nh(3)).unwrap(),
        UpdateKind::RouteFlap
    );
    assert_eq!(e.lookup(k("10.1.2.5")), Some(nh(3)));
    assert_verified(&e);
}

#[test]
fn withdraw_then_different_prefix_is_not_flap() {
    let mut e = engine_with(&[("10.1.2.0/24", 1)]);
    e.withdraw(p("10.1.2.0/24")).unwrap();
    // A *different* prefix in the same group is an add, not a flap...
    // except the group itself is dirty, which the paper also restores via
    // the dirty mechanism — but the prefix set must be exactly the new one.
    e.announce(p("10.1.2.128/25"), nh(7)).unwrap();
    assert_eq!(e.lookup(k("10.1.2.200")), Some(nh(7)));
    assert_eq!(
        e.lookup(k("10.1.2.1")),
        None,
        "withdrawn /24 must not resurface"
    );
    assert_verified(&e);
}

#[test]
fn double_withdraw_is_idempotent() {
    let mut e = engine_with(&[("10.1.0.0/16", 1)]);
    e.withdraw(p("10.1.0.0/16")).unwrap();
    let len_after_first = e.len();
    e.withdraw(p("10.1.0.0/16")).unwrap();
    assert_eq!(e.len(), len_after_first);
    assert_eq!(e.lookup(k("10.1.0.1")), None);
}

#[test]
fn update_stats_accumulate_and_reset() {
    let mut e = engine_with(&[("10.0.0.0/8", 1)]);
    e.announce(p("10.0.0.0/8"), nh(2)).unwrap();
    e.withdraw(p("10.0.0.0/8")).unwrap();
    let s = e.update_stats();
    assert_eq!(s.next_hop_changes, 1);
    assert_eq!(s.withdraws, 1);
    assert_eq!(s.total(), 2);
    e.reset_update_stats();
    assert_eq!(e.update_stats().total(), 0);
}

#[test]
fn singleton_inserts_into_fresh_regions() {
    // Announces of unrelated prefixes (new collapsed keys) should nearly
    // always be singleton inserts at low load.
    let mut e = engine_with(&[("10.0.0.0/8", 1)]);
    let mut singletons = 0;
    for i in 0..64u128 {
        // Distinct top-8-bits so each /12 lands in its own collapsed /8
        // group (length 12 sits in the 8..=12 cell).
        let prefix = Prefix::new(AddressFamily::V4, ((0x40 + i) << 4) & mask(12), 12).unwrap();
        match e.announce(prefix, nh(i as u32)).unwrap() {
            UpdateKind::AddSingleton => singletons += 1,
            UpdateKind::Resetup | UpdateKind::AddCollapsed => {}
            other => panic!("unexpected kind {other}"),
        }
    }
    // At this toy scale each of the 16 logical partitions has only ~12
    // Index Table locations, so late inserts occasionally miss a
    // singleton and re-setup (real deployments have thousands of
    // locations per partition — see the fig14 experiment).
    assert!(singletons >= 40, "only {singletons}/64 singleton inserts");
    // Either way, every announced prefix must resolve.
    for i in 0..64u128 {
        let key = Key::from_raw(AddressFamily::V4, ((0x40 + i) << 4) << 20);
        assert_eq!(e.lookup(key), Some(nh(i as u32)), "prefix {i}");
    }
    assert_verified(&e);
}

#[test]
fn resetup_purges_dirty_entries() {
    // Force enough new keys through a tiny, heavily-loaded cell to trigger
    // re-setups; dirty entries must be purged and never resurface.
    let config = ChiselConfig::ipv4()
        .slack(1.0)
        .partitions(2)
        .spill_capacity(1024);
    let mut t = RoutingTable::new_v4();
    for i in 0..256u128 {
        t.insert(Prefix::new(AddressFamily::V4, i, 20).unwrap(), nh(i as u32));
    }
    let mut e = ChiselLpm::build(&t, config).unwrap();
    // Withdraw half (making dirty groups), then announce a flood of new
    // keys to force inserts and eventually re-setups.
    for i in 0..128u128 {
        e.withdraw(Prefix::new(AddressFamily::V4, i, 20).unwrap())
            .unwrap();
    }
    for i in 0..2_000u128 {
        let prefix = Prefix::new(AddressFamily::V4, 0x400 + i, 20).unwrap();
        e.announce(prefix, nh(5000 + i as u32)).unwrap();
    }
    // Withdrawn prefixes stay gone.
    for i in 0..128u128 {
        let key = Key::from_raw(AddressFamily::V4, i << 12);
        assert_eq!(e.lookup(key), None, "dirty prefix {i} resurfaced");
    }
    // Survivors and new keys resolve.
    for i in 128..256u128 {
        let key = Key::from_raw(AddressFamily::V4, i << 12);
        assert_eq!(e.lookup(key), Some(nh(i as u32)));
    }
    for i in (0..2_000u128).step_by(37) {
        let key = Key::from_raw(AddressFamily::V4, (0x400 + i) << 12);
        assert_eq!(e.lookup(key), Some(nh(5000 + i as u32)));
    }
    assert_verified(&e);
}

#[test]
fn default_route_flap() {
    let mut e = engine_with(&[("0.0.0.0/0", 7)]);
    e.withdraw(p("0.0.0.0/0")).unwrap();
    assert_eq!(e.lookup(k("1.2.3.4")), None);
    assert_eq!(
        e.announce(p("0.0.0.0/0"), nh(8)).unwrap(),
        UpdateKind::RouteFlap
    );
    assert_eq!(e.lookup(k("1.2.3.4")), Some(nh(8)));
}

#[test]
fn unsupported_family_and_lengths_error_cleanly() {
    let mut e = engine_with(&[("10.0.0.0/8", 1)]);
    assert!(e.announce(p("2001:db8::/32"), nh(1)).is_err());
    assert!(e.withdraw(p("2001:db8::/32")).is_err());
}

#[test]
fn announce_at_never_populated_length_works() {
    // The covering plan must accept lengths absent from the build table.
    let mut e = engine_with(&[("10.0.0.0/8", 1)]);
    for len in 1..=32u8 {
        let prefix = Prefix::new(AddressFamily::V4, mask(len) & 0x5A5A_5A5A, len).unwrap();
        e.announce(prefix, nh(100 + len as u32)).unwrap();
    }
    // The /32 announce wins on its exact key.
    let key = Key::from_raw(AddressFamily::V4, 0x5A5A_5A5A);
    assert_eq!(e.lookup(key), Some(nh(132)));
    assert_verified(&e);
}

#[test]
fn verifier_stays_clean_under_random_churn() {
    // Drive every update path (announce/withdraw/flap/re-setup) from a
    // seeded random walk and re-verify periodically: structural
    // invariants must hold at every sampled point, not just at the end.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut t = RoutingTable::new_v4();
    while t.len() < 600 {
        let len = rng.gen_range(1..=32u8);
        let bits = rng.gen::<u128>() & mask(len);
        t.insert(
            Prefix::new(AddressFamily::V4, bits, len).unwrap(),
            nh(rng.gen_range(0..64)),
        );
    }
    let mut e = ChiselLpm::build(&t, ChiselConfig::ipv4()).unwrap();
    assert_verified(&e);
    for step in 0..1_500u32 {
        let len = rng.gen_range(1..=32u8);
        // A narrow bit pool makes withdraws hit live prefixes often.
        let bits = (rng.gen::<u128>() & mask(len)) & 0x3F3F_3F3F;
        let prefix = Prefix::new(AddressFamily::V4, bits, len).unwrap();
        if rng.gen_bool(0.45) {
            e.withdraw(prefix).unwrap();
        } else {
            e.announce(prefix, nh(step)).unwrap();
        }
        if step % 250 == 249 {
            assert_verified(&e);
        }
    }
    assert_verified(&e);
}

#[test]
fn flow_cache_coherent_across_1024_interleaved_schedules() {
    // The flow cache's only correctness claim: cached == uncached on
    // every key at every point of every update schedule. Each schedule
    // interleaves announces, withdraws and deliberate flaps
    // (withdraw-then-reannounce of a live prefix) with probe rounds; the
    // cache and a CachedReader both persist across the whole schedule, so
    // any missed invalidation — a stale positive after a withdraw, a
    // stale negative after an announce, a stale next hop after a flap —
    // shows up as a divergence. Probes repeat within a round to drive the
    // hit path, not just the fill path.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut total_hits = 0u64;
    for schedule in 0..1024u64 {
        let mut rng = StdRng::seed_from_u64(0xCAC4E ^ schedule);
        let mut t = RoutingTable::new_v4();
        for _ in 0..rng.gen_range(0..12) {
            let len = rng.gen_range(1..=32u8);
            let bits = (rng.gen::<u128>() & mask(len)) & 0x1F1F_1F1F;
            t.insert(
                Prefix::new(AddressFamily::V4, bits, len).unwrap(),
                nh(rng.gen_range(0..16)),
            );
        }
        let mut engine = ChiselLpm::build(&t, ChiselConfig::ipv4()).unwrap();
        let shared = SharedChisel::from_engine(engine.clone());
        // Tiny cache: index collisions and evictions every few probes.
        let mut cache = FlowCache::new(16);
        let mut reader = shared.reader_with_capacity(16);
        let mut live: Vec<Prefix> = t.iter().map(|e| e.prefix).collect();

        for step in 0..rng.gen_range(8..24usize) {
            // One update against both the bare engine and the shared
            // handle, keeping the two lineages identical.
            let flap = !live.is_empty() && rng.gen_bool(0.25);
            if flap {
                let p = live[rng.gen_range(0..live.len())];
                let hop = nh(rng.gen_range(16..32));
                engine.withdraw(p).unwrap();
                shared.withdraw(p).unwrap();
                engine.announce(p, hop).unwrap();
                shared.announce(p, hop).unwrap();
            } else {
                let len = rng.gen_range(1..=32u8);
                let bits = (rng.gen::<u128>() & mask(len)) & 0x1F1F_1F1F;
                let p = Prefix::new(AddressFamily::V4, bits, len).unwrap();
                if rng.gen_bool(0.4) {
                    engine.withdraw(p).unwrap();
                    shared.withdraw(p).unwrap();
                    live.retain(|&q| q != p);
                } else {
                    let hop = nh(step as u32);
                    engine.announce(p, hop).unwrap();
                    shared.announce(p, hop).unwrap();
                    if !live.contains(&p) {
                        live.push(p);
                    }
                }
            }
            // Probe round: a handful of keys, each twice (fill, then hit).
            for _ in 0..4 {
                let key = Key::from_raw(AddressFamily::V4, rng.gen::<u32>() as u128 & 0x1F1F_1FFF);
                let want = engine.lookup(key);
                for pass in 0..2 {
                    assert_eq!(
                        cache.lookup(&engine, key),
                        want,
                        "schedule {schedule} step {step} pass {pass}: cache diverged at {key}"
                    );
                    assert_eq!(
                        reader.lookup(key),
                        want,
                        "schedule {schedule} step {step} pass {pass}: reader diverged at {key}"
                    );
                }
            }
        }
        total_hits += cache.hits() + reader.cache().hits();
    }
    // The schedules must actually have exercised the hit path.
    assert!(
        total_hits > 10_000,
        "only {total_hits} cache hits across all schedules"
    );
}

#[test]
fn verifier_flags_corrupted_images() {
    // The negative direction: seed single-word corruptions into an
    // exported hardware image and check each one is caught. A verifier
    // that can't see planted collisions proves nothing about real ones.
    let e = engine_with(&[
        ("10.0.0.0/8", 1),
        ("10.1.0.0/16", 2),
        ("172.16.0.0/12", 3),
        ("192.168.0.0/16", 4),
        ("192.168.128.0/17", 5),
    ]);
    assert_verified(&e);
    let clean = e.export_image();

    // Corruption 1: duplicate a live key into another live row — the
    // Bloomier collision the whole design exists to rule out (§4.1).
    let mut img = clean.clone();
    let (cell, live): (usize, Vec<usize>) = img
        .cells
        .iter()
        .enumerate()
        .map(|(ci, c)| {
            (
                ci,
                (0..c.filter.len())
                    .filter(|&s| c.filter[s].valid)
                    .collect::<Vec<_>>(),
            )
        })
        .find(|(_, live)| live.len() >= 2)
        .expect("some cell holds two live rows");
    img.cells[cell].filter[live[1]].key = img.cells[cell].filter[live[0]].key;
    let report = verify_image(&img);
    assert!(
        report.violations.iter().any(|v| v.check == "duplicate-key"),
        "planted key collision not flagged:\n{report}"
    );

    // Corruption 2: point a live row's result block past the table.
    let mut img = clean.clone();
    let end = img.cells[cell].result.len() as u32;
    img.cells[cell].bitvec[live[0]].pointer = Some(end);
    let report = verify_image(&img);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.check == "result-out-of-bounds"),
        "planted wild pointer not flagged:\n{report}"
    );

    // Corruption 3: leave leaf bits set on a freed row.
    let mut img = clean.clone();
    let free = (0..img.cells[cell].filter.len())
        .find(|&s| !img.cells[cell].filter[s].valid)
        .expect("provisioned capacity leaves free rows");
    img.cells[cell].bitvec[free].vector.set(0, true);
    let report = verify_image(&img);
    assert!(
        report.violations.iter().any(|v| v.check == "stale-vector"),
        "planted stale vector not flagged:\n{report}"
    );

    // Corruption 4: break a spilled or indexed binding by invalidating
    // the row its key decodes to while keeping the key "live" elsewhere:
    // swap two live rows' keys without re-encoding the Index Table.
    let mut img = clean;
    let (a, b) = (live[0], live[1]);
    let ka = img.cells[cell].filter[a].key;
    img.cells[cell].filter[a].key = img.cells[cell].filter[b].key;
    img.cells[cell].filter[b].key = ka;
    let report = verify_image(&img);
    assert!(
        report.violations.iter().any(|v| v.check == "index-replay"),
        "planted mis-binding not flagged:\n{report}"
    );
}
