//! Cross-crate differential tests: every LPM engine in the workspace must
//! agree with the reference oracle on random tables, random keys, both
//! address families, and across configuration corners.

use chisel::baselines::{BinaryTrie, ChainedHashLpm, EbfCpeLpm, TreeBitmap};
use chisel::workloads::{synthesize, PrefixLenDistribution};
use chisel::{AddressFamily, ChiselConfig, ChiselLpm, Key};
use chisel_prefix::oracle::OracleLpm;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_key(rng: &mut StdRng, family: AddressFamily) -> Key {
    Key::from_raw(
        family,
        rng.gen::<u128>() & chisel_prefix::bits::mask(family.width()),
    )
}

/// Keys biased into covered space (half the time) so deep prefixes get
/// exercised, not just misses.
fn probe_keys(rng: &mut StdRng, table: &chisel::RoutingTable, n: usize) -> Vec<Key> {
    let prefixes: Vec<_> = table.iter().map(|e| e.prefix).collect();
    let family = table.family();
    let width = family.width();
    (0..n)
        .map(|_| {
            if prefixes.is_empty() || rng.gen_bool(0.5) {
                random_key(rng, family)
            } else {
                let p = prefixes[rng.gen_range(0..prefixes.len())];
                let host = rng.gen::<u128>() & chisel_prefix::bits::mask(width - p.len());
                Key::from_raw(family, p.network() | host)
            }
        })
        .collect()
}

#[test]
fn all_engines_agree_ipv4() {
    let table = synthesize(8_000, &PrefixLenDistribution::bgp_ipv4(), 42);
    let oracle = OracleLpm::from_table(&table);
    let chisel = ChiselLpm::build(&table, ChiselConfig::ipv4()).unwrap();
    let treebitmap = TreeBitmap::from_table(&table, 4);
    let trie = BinaryTrie::from_table(&table);
    let chained = ChainedHashLpm::from_table(&table, 2.0, 9);
    let ebf = EbfCpeLpm::build(&table, 7, 12.0, 3, 9).unwrap();

    let mut rng = StdRng::seed_from_u64(7);
    for key in probe_keys(&mut rng, &table, 20_000) {
        let expect = oracle.lookup(key);
        assert_eq!(chisel.lookup(key), expect, "chisel at {key}");
        assert_eq!(treebitmap.lookup(key), expect, "treebitmap at {key}");
        assert_eq!(trie.lookup(key), expect, "trie at {key}");
        assert_eq!(chained.lookup(key), expect, "chained at {key}");
        assert_eq!(ebf.lookup(key), expect, "ebf+cpe at {key}");
    }
}

#[test]
fn all_engines_agree_ipv6() {
    let v4 = synthesize(4_000, &PrefixLenDistribution::bgp_ipv4(), 43);
    let table = chisel::workloads::ipv6::synthesize_ipv6_from_v4_model(4_000, &v4, 43);
    let oracle = OracleLpm::from_table(&table);
    let chisel = ChiselLpm::build(&table, ChiselConfig::ipv6()).unwrap();
    let treebitmap = TreeBitmap::from_table(&table, 4);
    let trie = BinaryTrie::from_table(&table);

    let mut rng = StdRng::seed_from_u64(8);
    for key in probe_keys(&mut rng, &table, 10_000) {
        let expect = oracle.lookup(key);
        assert_eq!(chisel.lookup(key), expect, "chisel at {key}");
        assert_eq!(treebitmap.lookup(key), expect, "treebitmap at {key}");
        assert_eq!(trie.lookup(key), expect, "trie at {key}");
    }
}

#[test]
fn chisel_agrees_across_configuration_corners() {
    let table = synthesize(3_000, &PrefixLenDistribution::bgp_ipv4(), 44);
    let oracle = OracleLpm::from_table(&table);
    let configs = vec![
        ChiselConfig::ipv4().stride(1),
        ChiselConfig::ipv4().stride(2),
        ChiselConfig::ipv4().stride(6),
        ChiselConfig::ipv4().stride(8),
        ChiselConfig::ipv4().k(2).seed(5),
        ChiselConfig::ipv4().k(5).m_per_key(5.0),
        ChiselConfig::ipv4().partitions(1),
        ChiselConfig::ipv4().partitions(64),
        ChiselConfig::ipv4().slack(1.0),
        ChiselConfig::ipv4().slack(4.0),
    ];
    let mut rng = StdRng::seed_from_u64(9);
    let keys = probe_keys(&mut rng, &table, 4_000);
    for (i, config) in configs.into_iter().enumerate() {
        let engine = ChiselLpm::build(&table, config).unwrap();
        for &key in &keys {
            assert_eq!(
                engine.lookup(key),
                oracle.lookup(key),
                "config #{i} at {key}"
            );
        }
    }
}

#[test]
fn chisel_agrees_across_seeds() {
    // Hash-seed independence: any seed must give identical lookup results.
    let table = synthesize(2_000, &PrefixLenDistribution::bgp_ipv4(), 45);
    let oracle = OracleLpm::from_table(&table);
    let mut rng = StdRng::seed_from_u64(10);
    let keys = probe_keys(&mut rng, &table, 2_000);
    for seed in 0..8u64 {
        let engine = ChiselLpm::build(&table, ChiselConfig::ipv4().seed(seed)).unwrap();
        for &key in &keys {
            assert_eq!(
                engine.lookup(key),
                oracle.lookup(key),
                "seed {seed} at {key}"
            );
        }
    }
}

/// The full batch matrix for the vectorized cold path: uniform and
/// zipf-skewed streams, both address families, before and after an
/// update storm, compared lane-for-lane against the scalar per-key
/// path on both the blocked (default) and flat Index Table layouts.
/// With the `simd` feature on (the default) the batch side exercises
/// the AVX2 gather lanes wherever the host supports them; built with
/// `--no-default-features` the same test pins the scalar fallback —
/// CI runs both, so a divergence in either path fails the suite.
#[test]
fn batch_lanes_agree_with_scalar_across_matrix() {
    use chisel::workloads::keystream::{flow_pool, uniform_stream, zipf_stream};
    let quick = std::env::var_os("CHISEL_BENCH_QUICK").is_some();
    let (nkeys, depths): (usize, &[usize]) = if quick {
        (2_000, &[16])
    } else {
        (8_000, &[1, 4, 16, 64])
    };
    for family in [AddressFamily::V4, AddressFamily::V6] {
        let (table, base_config) = match family {
            AddressFamily::V4 => (
                synthesize(3_000, &PrefixLenDistribution::bgp_ipv4(), 61),
                ChiselConfig::ipv4(),
            ),
            AddressFamily::V6 => {
                let v4 = synthesize(2_000, &PrefixLenDistribution::bgp_ipv4(), 62);
                (
                    chisel::workloads::ipv6::synthesize_ipv6_from_v4_model(2_000, &v4, 62),
                    ChiselConfig::ipv6(),
                )
            }
        };
        for blocked in [true, false] {
            let mut engine =
                ChiselLpm::build(&table, base_config.clone().blocked_index(blocked)).unwrap();
            // Two passes: the freshly built engine, then the same engine
            // after a random announce/withdraw storm (spill entries,
            // dirty slots, rebuilt partitions all in play).
            for pass in 0..2 {
                if pass == 1 {
                    let mut rng = StdRng::seed_from_u64(63);
                    let live: Vec<chisel::Prefix> = table.iter().map(|e| e.prefix).collect();
                    for round in 0..500 {
                        if rng.gen_bool(0.4) && !live.is_empty() {
                            let p = live[rng.gen_range(0..live.len())];
                            let _ = engine.withdraw(p);
                        } else {
                            let len = rng.gen_range(1..=family.width());
                            let bits = rng.gen::<u128>() & chisel_prefix::bits::mask(len);
                            let p = chisel::Prefix::new(family, bits, len).unwrap();
                            engine.announce(p, chisel::NextHop::new(round)).unwrap();
                        }
                    }
                }
                let pool = flow_pool(&table, 1 << 12, 64 + pass as u64);
                for (name, stream) in [
                    ("uniform", uniform_stream(&pool, nkeys, 65)),
                    ("zipf", zipf_stream(&pool, 1.1, nkeys, 66)),
                ] {
                    let scalar: Vec<_> = stream.iter().map(|&k| engine.lookup(k)).collect();
                    for &lanes in depths {
                        let mut batched = vec![None; stream.len()];
                        engine.lookup_batch_lanes(&stream, &mut batched, lanes);
                        assert_eq!(
                            batched, scalar,
                            "{family:?} blocked={blocked} pass={pass} \
                             {name} lanes={lanes} diverged from scalar"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn engines_agree_after_update_storm() {
    // Apply the same random announce/withdraw storm to chisel, treebitmap,
    // trie, and oracle; all must stay in lockstep.
    let table = synthesize(2_000, &PrefixLenDistribution::bgp_ipv4(), 46);
    let mut oracle = OracleLpm::from_table(&table);
    let mut chisel = ChiselLpm::build(&table, ChiselConfig::ipv4()).unwrap();
    let mut treebitmap = TreeBitmap::from_table(&table, 4);
    let mut trie = BinaryTrie::from_table(&table);

    let mut rng = StdRng::seed_from_u64(11);
    let mut live: Vec<chisel::Prefix> = table.iter().map(|e| e.prefix).collect();
    for round in 0..4_000 {
        if rng.gen_bool(0.45) && !live.is_empty() {
            let p = live.swap_remove(rng.gen_range(0..live.len()));
            chisel.withdraw(p).unwrap();
            treebitmap.remove(&p);
            trie.remove(&p);
            oracle.remove(&p);
        } else {
            let len = rng.gen_range(1..=32u8);
            let bits = rng.gen::<u128>() & chisel_prefix::bits::mask(len);
            let p = chisel::Prefix::new(AddressFamily::V4, bits, len).unwrap();
            let nh = chisel::NextHop::new(rng.gen_range(0..256));
            chisel.announce(p, nh).unwrap();
            treebitmap.insert(p, nh);
            trie.insert(p, nh);
            oracle.insert(p, nh);
            if !live.contains(&p) {
                live.push(p);
            }
        }
        if round % 50 == 0 {
            let key = random_key(&mut rng, AddressFamily::V4);
            let expect = oracle.lookup(key);
            assert_eq!(chisel.lookup(key), expect, "chisel at round {round}");
            assert_eq!(
                treebitmap.lookup(key),
                expect,
                "treebitmap at round {round}"
            );
            assert_eq!(trie.lookup(key), expect, "trie at round {round}");
        }
    }
    // Full sweep at the end.
    let keys = probe_keys(&mut rng, &table, 5_000);
    for key in keys {
        assert_eq!(
            chisel.lookup(key),
            oracle.lookup(key),
            "final sweep at {key}"
        );
    }
}
