//! Crash-recovery differential suite for the durable control plane.
//!
//! The property under test is the redo-log contract of
//! `chisel::core::journal`: whatever instant the process dies — mid
//! journal append, mid checkpoint, mid shard batch — recovery from the
//! newest valid checkpoint plus the journal tail lands at **exactly**
//! the last durable generation, and the recovered engine answers
//! identically to a linear-scan [`OracleLpm`] driven to that same
//! generation over the full probe set.
//!
//! The suite has two halves:
//!
//! - Always-on tests (tier-1): clean round trips, torn-tail truncation,
//!   recovery chains, batched windows, and the daemon's durable serve
//!   path.
//! - A `--cfg faultpoint` kill matrix (run like `tests/faults.rs`, with
//!   `--test-threads 1`): for every seed × kill site × occurrence, the
//!   corresponding faultpoint cuts the write path mid-flight, the run
//!   "crashes", and recovery must land at the exact pre-crash durable
//!   generation with oracle-identical answers. `CHISEL_FAULT_SEEDS=N`
//!   widens the seed matrix (default 3).

use std::path::{Path, PathBuf};

use chisel::core::journal::{read_journal, recover, DurableControl, DurableError, DurableOptions};
use chisel::core::SharedChisel;
use chisel::dataplane::{Dataplane, DataplaneConfig, RunOptions};
use chisel::prefix::oracle::OracleLpm;
use chisel::workloads::UpdateEvent;
use chisel::{AddressFamily, ChiselConfig, Key, NextHop, Prefix, RoutingTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chisel-recovery-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Base table: a stable /8, a /16 fan, and /16 parents over the flap
/// /24s so withdraws always fall back to a cover.
fn base_table() -> RoutingTable {
    let mut t = RoutingTable::new_v4();
    t.insert(
        Prefix::new(AddressFamily::V4, 0x0A, 8).unwrap(),
        NextHop::new(1),
    );
    for i in 0..48u128 {
        t.insert(
            Prefix::new(AddressFamily::V4, 0x0A00 | i, 16).unwrap(),
            NextHop::new(10 + i as u32),
        );
    }
    for i in 0..16u128 {
        t.insert(
            Prefix::new(AddressFamily::V4, 0xF000 | i, 16).unwrap(),
            NextHop::new(500 + i as u32),
        );
    }
    t
}

fn build_shared() -> SharedChisel {
    SharedChisel::build(&base_table(), ChiselConfig::ipv4()).unwrap()
}

/// A deterministic announce/withdraw flap over /24s under the flap /16
/// parents. Withdraw-before-announce events are deliberately included:
/// the engine rejects them (typed), and the trackers below only count
/// what was accepted.
fn flap_trace(n: usize, seed: u64) -> Vec<UpdateEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let p = Prefix::new(
                AddressFamily::V4,
                0xF0_0000 | u128::from(rng.gen_range(0..48u32)),
                24,
            )
            .unwrap();
            if rng.gen_bool(0.6) {
                UpdateEvent::Announce(p, NextHop::new(1000 + rng.gen_range(0..64u32)))
            } else {
                UpdateEvent::Withdraw(p)
            }
        })
        .collect()
}

/// The full differential probe set: one key inside every table route,
/// every trace prefix (announced or not), and a random spray.
fn probe_keys(trace: &[UpdateEvent]) -> Vec<Key> {
    let mut keys: Vec<Key> = base_table().iter().map(|e| e.prefix.first_key()).collect();
    for ev in trace {
        let p = match ev {
            UpdateEvent::Announce(p, _) => p,
            UpdateEvent::Withdraw(p) => p,
        };
        keys.push(p.first_key());
        keys.push(Key::from_raw(
            AddressFamily::V4,
            p.bits() << (32 - p.len()) | 0x7F,
        ));
    }
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    keys.extend((0..512).map(|_| {
        Key::from_raw(
            AddressFamily::V4,
            u128::from(rng.gen_range(0x0A00_0000..0xF2FF_FFFFu32)),
        )
    }));
    keys
}

fn apply_to_oracle(oracle: &mut OracleLpm, ev: &UpdateEvent) {
    match *ev {
        UpdateEvent::Announce(p, nh) => oracle.insert(p, nh),
        UpdateEvent::Withdraw(p) => {
            oracle.remove(&p);
        }
    }
}

/// Asserts the recovered engine answers exactly as the oracle — driven
/// to `upto_generation` by the `(generation, event)` accept log — on
/// every probe.
fn assert_oracle_identity(
    recovered: &SharedChisel,
    accept_log: &[(u64, UpdateEvent)],
    upto_generation: u64,
    probes: &[Key],
) {
    let mut oracle = OracleLpm::from_table(&base_table());
    for (gen, ev) in accept_log {
        if *gen <= upto_generation {
            apply_to_oracle(&mut oracle, ev);
        }
    }
    let snap = recovered.snapshot();
    for &k in probes {
        assert_eq!(
            snap.lookup(k),
            oracle.lookup(k),
            "recovered engine diverges from oracle at {k} (generation {upto_generation})"
        );
    }
}

fn durable_opts(dir: &Path, name: &str, checkpoint_every: u64) -> DurableOptions {
    DurableOptions {
        fsync: false, // crash *semantics* are injected, not real power loss
        checkpoint_every,
        ..DurableOptions::at(dir.join(name), checkpoint_every)
    }
}

/// Replays `trace` one event at a time through a fresh `DurableControl`,
/// returning the handle and the accept log (generation → event).
fn drive(
    shared: &SharedChisel,
    opts: DurableOptions,
    trace: &[UpdateEvent],
) -> (DurableControl, Vec<(u64, UpdateEvent)>) {
    let mut dc = DurableControl::create(shared.clone(), opts).unwrap();
    let mut log = Vec::new();
    for ev in trace {
        let outcome = match *ev {
            UpdateEvent::Announce(p, nh) => dc.announce(p, nh).map(|_| ()),
            UpdateEvent::Withdraw(p) => dc.withdraw(p).map(|_| ()),
        };
        match outcome {
            Ok(()) => log.push((dc.shared().generation(), *ev)),
            Err(DurableError::Engine(_)) => {} // typed rejection: state unchanged
            Err(DurableError::Journal(e)) => panic!("unexpected durability failure: {e}"),
        }
    }
    (dc, log)
}

#[test]
fn crash_without_final_checkpoint_recovers_to_exact_generation() {
    let dir = tempdir("crash-no-final");
    let shared = build_shared();
    let trace = flap_trace(200, 11);
    let opts = durable_opts(&dir, "a.journal", 32);
    let (dc, log) = drive(&shared, opts.clone(), &trace);
    let expected = dc.durable_generation();
    assert_eq!(expected, shared.generation(), "every accept was journaled");
    // Crash: drop the control without a final checkpoint. The journal
    // tail since the last periodic rotation is the only record.
    drop(dc);
    let rec = recover(&opts.checkpoint, &opts.journal).unwrap();
    assert_eq!(rec.report.final_generation, expected);
    assert_eq!(rec.shared.generation(), expected);
    assert!(rec.shared.snapshot().verify().is_ok());
    assert_oracle_identity(&rec.shared, &log, expected, &probe_keys(&trace));
}

#[test]
fn torn_journal_tail_is_truncated_and_recovery_lands_one_record_back() {
    let dir = tempdir("torn-tail");
    let shared = build_shared();
    let trace = flap_trace(120, 23);
    let opts = durable_opts(&dir, "torn.journal", 0);
    let (dc, log) = drive(&shared, opts.clone(), &trace);
    let full_generation = dc.durable_generation();
    drop(dc);
    // Tear the tail by hand: chop bytes off the last record's frame.
    let bytes = std::fs::read(&opts.journal).unwrap();
    for cut in [1usize, 7, 13] {
        std::fs::write(&opts.journal, &bytes[..bytes.len() - cut]).unwrap();
        let rec = recover(&opts.checkpoint, &opts.journal).unwrap();
        assert_eq!(
            rec.report.final_generation,
            full_generation - 1,
            "a torn final record must roll back exactly one generation"
        );
        assert!(rec.report.truncated_bytes > 0);
        assert_oracle_identity(
            &rec.shared,
            &log,
            rec.report.final_generation,
            &probe_keys(&trace),
        );
    }
}

#[test]
fn recovery_chains_through_a_second_incarnation() {
    let dir = tempdir("chain");
    let shared = build_shared();
    let trace = flap_trace(160, 31);
    let (first_half, second_half) = trace.split_at(80);
    let opts = durable_opts(&dir, "chain.journal", 0);
    let (dc, mut log) = drive(&shared, opts.clone(), first_half);
    drop(dc); // crash #1
    let rec1 = recover(&opts.checkpoint, &opts.journal).unwrap();
    let gen1 = rec1.report.final_generation;

    // Second incarnation: a new DurableControl over the *recovered*
    // handle compacts the tail into a fresh checkpoint, then keeps
    // journaling where the crashed process left off.
    let (dc2, log2) = drive(&rec1.shared, opts.clone(), second_half);
    assert!(dc2.durable_generation() >= gen1);
    let expected = dc2.durable_generation();
    drop(dc2); // crash #2
    let rec2 = recover(&opts.checkpoint, &opts.journal).unwrap();
    assert_eq!(rec2.report.final_generation, expected);
    log.extend(log2);
    assert_oracle_identity(&rec2.shared, &log, expected, &probe_keys(&trace));
}

#[test]
fn batched_windows_journal_one_record_per_generation() {
    use chisel::core::RouteUpdate;
    let dir = tempdir("windows");
    let shared = build_shared();
    let trace = flap_trace(192, 47);
    let opts = durable_opts(&dir, "windows.journal", 0);
    let mut dc = DurableControl::create(shared.clone(), opts.clone()).unwrap();
    let mut log: Vec<(u64, UpdateEvent)> = Vec::new();
    for chunk in trace.chunks(16) {
        let window: Vec<RouteUpdate> = chunk
            .iter()
            .map(|ev| match *ev {
                UpdateEvent::Announce(p, nh) => RouteUpdate::Announce(p, nh),
                UpdateEvent::Withdraw(p) => RouteUpdate::Withdraw(p),
            })
            .collect();
        let report = dc.apply_batch(&window).unwrap();
        let generation = dc.shared().generation();
        let mut rejected = report.rejected_events.iter().copied().peekable();
        for (i, ev) in chunk.iter().enumerate() {
            if rejected.peek() == Some(&i) {
                rejected.next();
            } else {
                log.push((generation, *ev));
            }
        }
    }
    let expected = dc.durable_generation();
    assert_eq!(
        expected,
        (trace.len() / 16) as u64,
        "one generation per window"
    );
    drop(dc); // crash without final checkpoint
    let scan = read_journal(&opts.journal, AddressFamily::V4).unwrap();
    assert_eq!(
        scan.records.len(),
        trace.len() / 16,
        "one record per window"
    );
    let rec = recover(&opts.checkpoint, &opts.journal).unwrap();
    assert_eq!(rec.report.final_generation, expected);
    assert_oracle_identity(&rec.shared, &log, expected, &probe_keys(&trace));
}

#[test]
fn daemon_durable_serve_recovers_to_the_drain_generation() {
    let dir = tempdir("daemon");
    let shared = build_shared();
    let trace = flap_trace(96, 59);
    let opts = durable_opts(&dir, "daemon.journal", 24);
    let dp = Dataplane::new(
        shared.clone(),
        DataplaneConfig {
            shards: 2,
            ..DataplaneConfig::default()
        },
    );
    let stream: Vec<Key> = probe_keys(&trace);
    let report = dp.run(
        &stream,
        &RunOptions {
            updates: trace.clone(),
            tolerate_rejections: true,
            durable: Some(opts.clone()),
            ..RunOptions::default()
        },
    );
    assert!(
        report.control.failed.is_none(),
        "{:?}",
        report.control.failed
    );
    assert!(report.healthy());
    assert!(report.aggregate.is_balanced());
    let stats = report.control.durable.expect("durable stats");
    assert_eq!(
        stats.appended_records, report.control.applied as u64,
        "one journal record per accepted update"
    );
    // The drain checkpoint rotated the journal; recovery reproduces the
    // exact post-drain engine.
    let rec = recover(&opts.checkpoint, &opts.journal).unwrap();
    assert_eq!(rec.report.final_generation, report.control.final_generation);
    assert_eq!(rec.report.replayed_records, 0, "clean shutdown, empty tail");
    let live = shared.snapshot();
    let back = rec.shared.snapshot();
    for &k in &stream {
        assert_eq!(back.lookup(k), live.lookup(k), "recovered ≠ live at {k}");
    }
}

/// The seeded kill matrix: only compiled under `--cfg faultpoint`.
#[cfg(faultpoint)]
mod kill_matrix {
    use super::*;
    use chisel::core::faultpoint::{self, arm, FaultPlan};
    use chisel::core::journal::JournalError;

    fn seeds() -> Vec<u64> {
        let n = std::env::var("CHISEL_FAULT_SEEDS")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(3)
            .max(1);
        (1..=n).collect()
    }

    /// Drives the trace until an injected durability fault "kills" the
    /// process; returns the accept log and the expected (last durable)
    /// generation, or `None` if the armed occurrence was never reached.
    /// The plan is armed only *after* `DurableControl::create`: the boot
    /// checkpoint and journal header are part of startup, not of the
    /// kill window.
    fn drive_until_kill(
        shared: &SharedChisel,
        opts: DurableOptions,
        trace: &[UpdateEvent],
        plan: FaultPlan,
    ) -> Option<(Vec<(u64, UpdateEvent)>, u64)> {
        let mut dc = DurableControl::create(shared.clone(), opts).unwrap();
        let _guard = arm(plan);
        let mut log = Vec::new();
        for ev in trace {
            let outcome = match *ev {
                UpdateEvent::Announce(p, nh) => dc.announce(p, nh).map(|_| ()),
                UpdateEvent::Withdraw(p) => dc.withdraw(p).map(|_| ()),
            };
            match outcome {
                Ok(()) => log.push((dc.shared().generation(), *ev)),
                Err(DurableError::Engine(_)) => {}
                Err(DurableError::Journal(JournalError::Fault { .. })) => {
                    // The injected crash. Everything at or below the
                    // durable generation survives; the torn tail (if
                    // any) must be truncated by recovery. A checkpoint
                    // fault fires *after* the triggering append landed,
                    // so that event is durable despite the error — the
                    // generations tell the two cases apart.
                    let durable = dc.durable_generation();
                    if durable == dc.shared().generation() {
                        log.push((durable, *ev));
                    }
                    return Some((log, durable));
                }
                Err(DurableError::Journal(e)) => panic!("unexpected journal error: {e}"),
            }
        }
        None
    }

    #[test]
    fn journal_short_write_kill_sites_recover_exactly() {
        let trace = flap_trace(96, 7);
        let probes = probe_keys(&trace);
        for seed in seeds() {
            let mut killed = 0usize;
            for occurrence in [0u64, 1, 5, 17, 40] {
                let dir = tempdir(&format!("kill-jsw-{seed}-{occurrence}"));
                let shared = build_shared();
                let opts = durable_opts(&dir, "kill.journal", 16);
                let plan =
                    FaultPlan::new(seed).once_at(faultpoint::JOURNAL_SHORT_WRITE, occurrence);
                let Some((log, expected)) = drive_until_kill(&shared, opts.clone(), &trace, plan)
                else {
                    continue; // occurrence beyond the trace's appends
                };
                killed += 1;
                let rec = recover(&opts.checkpoint, &opts.journal).unwrap();
                assert_eq!(
                    rec.report.final_generation, expected,
                    "seed {seed} occurrence {occurrence}: wrong recovered generation"
                );
                assert!(
                    rec.report.truncated_bytes > 0,
                    "a short write must leave a torn tail for recovery to truncate"
                );
                assert!(rec.shared.snapshot().verify().is_ok());
                assert_oracle_identity(&rec.shared, &log, expected, &probes);
            }
            assert!(killed >= 3, "seed {seed}: kill matrix barely exercised");
        }
    }

    #[test]
    fn checkpoint_fsync_fail_keeps_the_previous_checkpoint_authoritative() {
        let trace = flap_trace(96, 13);
        let probes = probe_keys(&trace);
        for seed in seeds() {
            let mut killed = 0usize;
            for occurrence in [0u64, 1, 2] {
                let dir = tempdir(&format!("kill-ckpt-{seed}-{occurrence}"));
                let shared = build_shared();
                let opts = durable_opts(&dir, "kill.journal", 16);
                let plan =
                    FaultPlan::new(seed).once_at(faultpoint::CHECKPOINT_FSYNC_FAIL, occurrence);
                let Some((log, expected)) = drive_until_kill(&shared, opts.clone(), &trace, plan)
                else {
                    continue; // fewer periodic checkpoints than `occurrence`
                };
                killed += 1;
                // The append that triggered the periodic checkpoint was
                // already durable, so recovery must include it.
                let rec = recover(&opts.checkpoint, &opts.journal).unwrap();
                assert_eq!(
                    rec.report.final_generation, expected,
                    "seed {seed} occurrence {occurrence}: wrong recovered generation"
                );
                assert!(rec.shared.snapshot().verify().is_ok());
                assert_oracle_identity(&rec.shared, &log, expected, &probes);
            }
            assert!(killed >= 1, "seed {seed}: no checkpoint kill landed");
        }
    }

    #[test]
    fn supervised_shard_survives_an_injected_panic_with_zero_lost_counters() {
        let trace = flap_trace(48, 17);
        let stream = probe_keys(&trace);
        for seed in seeds() {
            for occurrence in [0u64, 3] {
                let shared = build_shared();
                let dp = Dataplane::new(
                    shared.clone(),
                    DataplaneConfig {
                        shards: 2,
                        batch: 32,
                        ..DataplaneConfig::default()
                    },
                );
                let _guard = arm(FaultPlan::new(seed).once_at(faultpoint::SHARD_PANIC, occurrence));
                let report = dp.run(
                    &stream,
                    &RunOptions {
                        record: true,
                        ..RunOptions::default()
                    },
                );
                drop(_guard);
                // Survived, with the panic on the books and nothing lost.
                assert_eq!(report.aggregate.respawns, 1);
                assert_eq!(report.failures.len(), 1);
                assert!(report.failures[0].respawned);
                assert_eq!(report.failures[0].lost_keys, 0);
                assert_eq!(report.aggregate.dropped_batches, 0);
                assert_eq!(report.aggregate.lookups, stream.len() as u64);
                assert!(report.aggregate.is_balanced(), "counters lost in respawn");
                assert!(report.healthy());
                // The respawned shard's answers are still correct: no
                // updates ran, so every recorded answer must match the
                // base engine.
                let snap = shared.snapshot();
                for rec in report.records.iter().flatten() {
                    assert_eq!(rec.generation, 0);
                    for (k, a) in rec.keys.iter().zip(&rec.answers) {
                        assert_eq!(*a, snap.lookup(*k), "respawned shard lied at {k}");
                    }
                }
            }
        }
    }

    #[test]
    fn unsupervised_shard_panic_is_reported_not_propagated() {
        let trace = flap_trace(16, 29);
        let stream = probe_keys(&trace);
        let shared = build_shared();
        let dp = Dataplane::new(
            shared,
            DataplaneConfig {
                shards: 2,
                supervise: false,
                ..DataplaneConfig::default()
            },
        );
        let _guard = arm(FaultPlan::new(1).with(faultpoint::SHARD_PANIC, 1.0));
        let report = dp.run(&stream, &RunOptions::default());
        drop(_guard);
        assert!(!report.failures.is_empty());
        assert!(report.failures.iter().all(|f| !f.respawned));
        assert!(!report.healthy());
        assert_eq!(report.aggregate.respawns, 0);
    }

    #[test]
    fn durable_serve_survives_shard_panic_and_recovers() {
        // Both robustness stories at once: a worker panics mid-serve
        // while the control plane is journaling; the run survives, and
        // post-drain recovery reproduces the exact drain generation.
        let trace = flap_trace(64, 37);
        let stream = probe_keys(&trace);
        for seed in seeds() {
            let dir = tempdir(&format!("serve-panic-{seed}"));
            let shared = build_shared();
            let opts = durable_opts(&dir, "serve.journal", 16);
            let dp = Dataplane::new(
                shared.clone(),
                DataplaneConfig {
                    shards: 2,
                    batch: 32,
                    ..DataplaneConfig::default()
                },
            );
            let _guard = arm(FaultPlan::new(seed).once_at(faultpoint::SHARD_PANIC, 2));
            let report = dp.run(
                &stream,
                &RunOptions {
                    updates: trace.clone(),
                    tolerate_rejections: true,
                    durable: Some(opts.clone()),
                    ..RunOptions::default()
                },
            );
            drop(_guard);
            assert!(
                report.control.failed.is_none(),
                "{:?}",
                report.control.failed
            );
            assert_eq!(report.aggregate.respawns, 1);
            assert!(report.healthy());
            assert!(report.aggregate.is_balanced());
            assert_eq!(report.aggregate.lookups, stream.len() as u64);
            let rec = recover(&opts.checkpoint, &opts.journal).unwrap();
            assert_eq!(rec.report.final_generation, report.control.final_generation);
            let live = shared.snapshot();
            let back = rec.shared.snapshot();
            for &k in &stream {
                assert_eq!(back.lookup(k), live.lookup(k));
            }
        }
    }
}
