//! Shard-equivalence test layer for the `chisel-dataplane` daemon.
//!
//! The central property is *shard equivalence*: a sharded daemon is just
//! N views of one engine, so every answer any shard gives must equal the
//! single-engine reference answer **at the snapshot generation the batch
//! was answered at** — for every seed, every shard count, and under an
//! adversarial update storm. The daemon records `(generation, keys,
//! answers)` per batch; the tests replay the control plane's accepted
//! updates through `OracleLpm` (and, at quiescence, `ChiselLpm` itself)
//! to reconstruct the exact per-generation ground truth, the same
//! discipline as the snapshot-linearizability suite in
//! `tests/concurrent.rs`: a batch whose answers match no single
//! generation means a torn snapshot, and fails loudly.

use std::collections::HashMap;

use chisel::core::SharedChisel;
use chisel::dataplane::{Dataplane, DataplaneConfig, DataplaneStats, RunOptions};
use chisel::prefix::oracle::OracleLpm;
use chisel::workloads::{
    adversarial_trace, flow_pool, synthesize, uniform_stream, PrefixLenDistribution, UpdateEvent,
};
use chisel::{AddressFamily, ChiselConfig, Key, NextHop, Prefix, RoutingTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Base table for the valid-trace runs: a stable /8, a /16 fan, and a
/// /16 parent over every flap /24 so withdraws fall back to a cover.
fn base_table() -> RoutingTable {
    let mut t = RoutingTable::new_v4();
    t.insert(
        Prefix::new(AddressFamily::V4, 0x0A, 8).unwrap(),
        NextHop::new(1),
    );
    for i in 0..64u128 {
        t.insert(
            Prefix::new(AddressFamily::V4, 0x0A00 | i, 16).unwrap(),
            NextHop::new(10 + i as u32),
        );
    }
    for i in 0..32u128 {
        t.insert(
            Prefix::new(AddressFamily::V4, 0xF000 | i, 16).unwrap(),
            NextHop::new(500 + i as u32),
        );
    }
    t
}

/// A deterministic announce/withdraw flap over /24s under the flap /16s
/// (always accepted: every prefix has a covering parent).
fn flap_trace(n: usize, seed: u64) -> Vec<UpdateEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|ev| {
            let p = Prefix::new(
                AddressFamily::V4,
                0xF0_0000 | u128::from(rng.gen_range(0..32u32)),
                24,
            )
            .unwrap();
            if rng.gen_bool(0.7) {
                UpdateEvent::Announce(p, NextHop::new(1000 + ev as u32))
            } else {
                UpdateEvent::Withdraw(p)
            }
        })
        .collect()
}

/// Probe flows that cross the flapping /24s and the stable fan.
fn probe_stream(seed: u64, n: usize) -> Vec<Key> {
    let mut keys: Vec<Key> = (0..32u128)
        .map(|i| Key::from_raw(AddressFamily::V4, (0xF0_0000 | i) << 8 | 0x2A))
        .collect();
    keys.extend(
        (0..32u128).map(|i| Key::from_raw(AddressFamily::V4, ((0x0A00 | i) << 16) | 0x0101)),
    );
    uniform_stream(&keys, n, seed)
}

/// Per-generation ground truth: `answers[&key][g]` is the oracle's
/// answer for `key` after the first `g` accepted updates.
fn oracle_by_generation(
    table: &RoutingTable,
    accepted: &[UpdateEvent],
    keys: &[Key],
) -> HashMap<u128, Vec<Option<NextHop>>> {
    let mut distinct: Vec<Key> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for &k in keys {
        if seen.insert(k.value()) {
            distinct.push(k);
        }
    }
    let mut oracle = OracleLpm::from_table(table);
    let mut answers: HashMap<u128, Vec<Option<NextHop>>> = distinct
        .iter()
        .map(|k| (k.value(), vec![oracle.lookup(*k)]))
        .collect();
    for ev in accepted {
        match ev {
            UpdateEvent::Announce(p, nh) => oracle.insert(*p, *nh),
            UpdateEvent::Withdraw(p) => {
                oracle.remove(p);
            }
        }
        for k in &distinct {
            answers.get_mut(&k.value()).unwrap().push(oracle.lookup(*k));
        }
    }
    answers
}

/// Checks every recorded batch of every shard against the oracle at the
/// batch's own generation; returns how many (batch, key) pairs were
/// checked. Any divergence is a torn / non-linearizable snapshot.
fn assert_shard_equivalence(
    report: &chisel::dataplane::DataplaneReport,
    answers: &HashMap<u128, Vec<Option<NextHop>>>,
    label: &str,
) -> usize {
    let mut checked = 0usize;
    for (shard, records) in report.records.iter().enumerate() {
        for rec in records {
            let g = rec.generation as usize;
            for (key, got) in rec.keys.iter().zip(&rec.answers) {
                let per_gen = answers
                    .get(&key.value())
                    .unwrap_or_else(|| panic!("{label}: unknown probe key {key}"));
                assert!(
                    g < per_gen.len(),
                    "{label}: shard {shard} answered at unpublished generation {g}"
                );
                assert_eq!(
                    *got, per_gen[g],
                    "{label}: shard {shard} diverged from oracle for {key} at generation {g}"
                );
                checked += 1;
            }
        }
    }
    checked
}

/// Shard-equivalence differential test: seeds × shard counts {1,2,4,8},
/// valid flap trace, every recorded batch equals the oracle at its own
/// snapshot generation — and the quiesced daemon equals `ChiselLpm`.
#[test]
fn shards_are_equivalent_to_single_engine_at_every_generation() {
    let table = base_table();
    for seed in [0xC0FFEE_u64, 0xBEEF] {
        let trace = flap_trace(120, seed);
        let stream = probe_stream(seed ^ 0x5EED, 6_000);
        for shards in SHARD_COUNTS {
            let label = format!("seed {seed:#x}, {shards} shard(s)");
            let shared = SharedChisel::build(&table, ChiselConfig::ipv4().seed(7).slack(3.0))
                .expect("engine builds");
            let dataplane = Dataplane::new(
                shared.clone(),
                DataplaneConfig {
                    shards,
                    batch: 32,
                    ..DataplaneConfig::default()
                },
            );
            let report = dataplane.run(
                &stream,
                &RunOptions {
                    updates: trace.clone(),
                    record: true,
                    ..RunOptions::default()
                },
            );
            assert!(report.control.failed.is_none(), "{label}: control failed");
            assert_eq!(report.control.rejected, 0, "{label}");
            let answers = oracle_by_generation(&table, &report.control.accepted, &stream);
            let checked = assert_shard_equivalence(&report, &answers, &label);
            assert_eq!(checked, stream.len(), "{label}: not every key was checked");

            // Quiescence: a fresh single-pass run after the control plane
            // is done must agree with the engine itself on every probe.
            let settle = dataplane.run(&stream, &RunOptions::default());
            assert_eq!(
                settle.aggregate.min_generation, settle.aggregate.max_generation,
                "{label}: quiesced run saw multiple generations"
            );
            let final_answers: Vec<Option<NextHop>> =
                shared.with_engine(|e| stream.iter().map(|&k| e.lookup(k)).collect());
            let matched_expect = final_answers.iter().filter(|a| a.is_some()).count() as u64;
            assert_eq!(settle.aggregate.matched, matched_expect, "{label}");
            assert!(settle.aggregate.is_balanced(), "{label}");
        }
    }
}

/// Update-storm torture: the control plane replays an adversarial trace
/// (duplicate announces, withdraw-before-announce, flap bursts, host
/// routes) at full rate while every shard serves lookups. No shard may
/// observe a torn snapshot, and the post-drain stats must balance per
/// shard and in the roll-up.
#[test]
fn update_storm_never_tears_a_snapshot_and_stats_balance() {
    let table = synthesize(600, &PrefixLenDistribution::bgp_ipv4(), 0xB14C);
    let storm = adversarial_trace(&table, 900, 0x00AD_5EED);
    let pool = flow_pool(&table, 48, 0xF10A);
    let stream = uniform_stream(&pool, 8_000, 0x21FF);
    for shards in SHARD_COUNTS {
        let label = format!("storm, {shards} shard(s)");
        let shared = SharedChisel::build(&table, ChiselConfig::ipv4()).expect("engine builds");
        let dataplane = Dataplane::new(
            shared.clone(),
            DataplaneConfig {
                shards,
                batch: 32,
                ..DataplaneConfig::default()
            },
        );
        let report = dataplane.run(
            &stream,
            &RunOptions {
                updates: storm.clone(),
                tolerate_rejections: true,
                record: true,
                traced: true,
                ..RunOptions::default()
            },
        );
        assert!(report.control.failed.is_none(), "{label}");
        assert_eq!(
            report.control.final_generation, report.control.applied as u64,
            "{label}: generations must count accepted updates exactly"
        );

        // Linearizability under the storm: every batch matches the
        // oracle state after exactly `generation` accepted updates.
        let answers = oracle_by_generation(&table, &report.control.accepted, &stream);
        let checked = assert_shard_equivalence(&report, &answers, &label);
        assert_eq!(checked, stream.len(), "{label}");

        // Post-drain balance: per shard and in the roll-up, hits +
        // misses == lookups issued, and the traced counters agree.
        for s in &report.per_shard {
            assert!(
                s.is_balanced(),
                "{label}: shard {} unbalanced: {s:?}",
                s.shard
            );
            assert_eq!(
                s.trace.cache_hits as u64 + s.trace.cache_misses as u64,
                s.lookups,
                "{label}: shard {} trace lost lookups",
                s.shard
            );
        }
        let agg = &report.aggregate;
        assert!(agg.is_balanced(), "{label}: roll-up unbalanced: {agg:?}");
        assert_eq!(agg.lookups, stream.len() as u64, "{label}");
        assert_eq!(
            agg.cache_hits,
            report.per_shard.iter().map(|s| s.cache_hits).sum::<u64>(),
            "{label}: cache hits lost in shutdown"
        );
        assert_eq!(
            agg.trace.degraded_hits,
            report
                .per_shard
                .iter()
                .map(|s| s.trace.degraded_hits)
                .sum::<usize>(),
            "{label}: degraded hits lost in shutdown"
        );

        // The roll-up is order-independent (the daemon already asserts
        // the algebra in unit tests; re-check on real counters).
        let mut reversed: Vec<_> = report.per_shard.clone();
        reversed.reverse();
        assert_eq!(
            *agg,
            DataplaneStats::roll_up(reversed.iter()),
            "{label}: roll-up depends on shard order"
        );
    }
}

/// The dispatcher must be flow-stable end to end: with recording on,
/// every occurrence of one key lands on the same shard.
#[test]
fn flows_stick_to_their_shard() {
    let table = base_table();
    let stream = probe_stream(0xD15B, 4_000);
    let shared = SharedChisel::build(&table, ChiselConfig::ipv4()).expect("engine builds");
    let dataplane = Dataplane::new(
        shared,
        DataplaneConfig {
            shards: 4,
            batch: 16,
            ..DataplaneConfig::default()
        },
    );
    let report = dataplane.run(
        &stream,
        &RunOptions {
            record: true,
            ..RunOptions::default()
        },
    );
    let mut owner: HashMap<u128, usize> = HashMap::new();
    for (shard, records) in report.records.iter().enumerate() {
        for rec in records {
            for key in &rec.keys {
                let prev = owner.insert(key.value(), shard);
                assert!(
                    prev.is_none() || prev == Some(shard),
                    "flow {key} moved from shard {prev:?} to {shard}"
                );
            }
        }
    }
    // All four shards actually served traffic.
    assert!(
        report.per_shard.iter().all(|s| s.lookups > 0),
        "some shard got no traffic: {:?}",
        report.per_shard
    );
}
