//! Build-determinism suite: the parallel full-build pipeline must produce
//! an engine whose exported hardware image is *byte-identical* to the
//! serial build, for any worker count, both address families, and across
//! configuration corners. This is what licenses defaulting the pipeline
//! to all available cores: threads can only change wall-clock time, never
//! a single table word.

use chisel::workloads::ipv6::synthesize_ipv6_from_v4_model;
use chisel::workloads::{synthesize, PrefixLenDistribution};
use chisel::{ChiselConfig, ChiselLpm};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn images_for(table: &chisel::RoutingTable, config: &ChiselConfig) -> Vec<Vec<u8>> {
    THREAD_COUNTS
        .iter()
        .map(|&t| {
            ChiselLpm::build(table, config.clone().build_threads(t))
                .expect("build succeeds")
                .export_image()
                .to_bytes()
        })
        .collect()
}

fn assert_identical(table: &chisel::RoutingTable, config: &ChiselConfig, label: &str) {
    let images = images_for(table, config);
    assert!(!images[0].is_empty(), "{label}: image must be non-trivial");
    for (i, image) in images.iter().enumerate().skip(1) {
        assert_eq!(
            image.len(),
            images[0].len(),
            "{label}: image size diverged at {} threads",
            THREAD_COUNTS[i]
        );
        assert!(
            image == &images[0],
            "{label}: image bytes diverged at {} threads",
            THREAD_COUNTS[i]
        );
    }
}

#[test]
fn ipv4_images_are_byte_identical_across_thread_counts() {
    let table = synthesize(30_000, &PrefixLenDistribution::bgp_ipv4(), 42);
    assert_identical(&table, &ChiselConfig::ipv4(), "ipv4/default");
}

#[test]
fn ipv6_images_are_byte_identical_across_thread_counts() {
    let v4 = synthesize(8_000, &PrefixLenDistribution::bgp_ipv4(), 43);
    let table = synthesize_ipv6_from_v4_model(8_000, &v4, 43);
    assert_identical(&table, &ChiselConfig::ipv6(), "ipv6/default");
}

#[test]
fn configuration_corners_are_byte_identical() {
    let table = synthesize(6_000, &PrefixLenDistribution::bgp_ipv4(), 44);
    for (config, label) in [
        (ChiselConfig::ipv4().partitions(1), "d=1"),
        (ChiselConfig::ipv4().partitions(64), "d=64"),
        (ChiselConfig::ipv4().stride(6).k(4), "stride6-k4"),
        (ChiselConfig::ipv4().slack(1.0), "tight-slack"),
    ] {
        assert_identical(&table, &config, label);
    }
}

#[test]
fn identical_images_still_answer_lookups() {
    // Guard against a degenerate serializer: the byte-compared images must
    // replay real lookups identically to the engines they came from.
    let table = synthesize(5_000, &PrefixLenDistribution::bgp_ipv4(), 45);
    let serial = ChiselLpm::build(&table, ChiselConfig::ipv4().build_threads(1)).unwrap();
    let parallel = ChiselLpm::build(&table, ChiselConfig::ipv4().build_threads(8)).unwrap();
    let image = parallel.export_image();
    for e in table.iter() {
        let key = chisel::Key::from_raw(table.family(), e.prefix.network());
        assert_eq!(serial.lookup(key), parallel.lookup(key));
        assert_eq!(image.lookup(key), serial.lookup(key));
    }
}
