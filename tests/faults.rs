//! Deterministic fault-injection suite for the hardened control plane.
//!
//! Compiled only under `RUSTFLAGS="--cfg faultpoint"` (the same pattern
//! as the loom-lite model checker) and run with `--test-threads 1`: the
//! fault harness serializes armings through a global guard, so parallel
//! test threads would only contend.
//!
//! Every test follows the same invariant: whatever faults fire — forced
//! Bloomier setup failures, spillover-TCAM overflow, partial update
//! application, allocation pressure — the engine either applies an
//! update fully or rejects it with a typed error leaving published
//! state unchanged. Lookups are checked against a linear-scan
//! [`OracleLpm`] that mirrors exactly the updates the engine accepted.
//!
//! `CHISEL_FAULT_SEEDS=N` widens the seed matrix (default 3).

#![cfg(faultpoint)]

use chisel::core::faultpoint::{self, arm, FaultPlan};
use chisel::core::{ChiselError, DegradedMode, LookupTrace, RouteUpdate, SharedChisel, UpdateKind};
use chisel::prefix::oracle::OracleLpm;
use chisel::workloads::{adversarial_trace, synthesize, PrefixLenDistribution, UpdateEvent};
use chisel::{AddressFamily, ChiselConfig, ChiselLpm, Key, NextHop, Prefix, RoutingTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn seeds() -> Vec<u64> {
    let n = std::env::var("CHISEL_FAULT_SEEDS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(3)
        .max(1);
    (1..=n).collect()
}

/// The CI fault matrix: site mixes that force each recovery path. The
/// resetup sites ride on `no-singleton` because a forced insert
/// collision is what routes an announce into the re-setup machinery.
fn fault_plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "setup-fail",
            FaultPlan::new(seed)
                .with(faultpoint::NO_SINGLETON, 0.4)
                .with(faultpoint::SETUP_FAIL, 0.5),
        ),
        (
            "spill-overflow",
            FaultPlan::new(seed)
                .with(faultpoint::NO_SINGLETON, 0.4)
                .with(faultpoint::SPILL_OVERFLOW, 0.5),
        ),
        (
            "partial-update",
            FaultPlan::new(seed).with(faultpoint::PARTIAL_UPDATE, 0.05),
        ),
        (
            "alloc-pressure",
            FaultPlan::new(seed).with(faultpoint::ALLOC_PRESSURE, 0.5),
        ),
    ]
}

/// Replays an adversarial trace through a snapshot-published engine with
/// faults armed, mirroring only *accepted* updates into the oracle, then
/// checks the engine against the oracle and its own invariants.
fn run_matrix_case(seed: u64, name: &str, plan: FaultPlan) {
    let table = synthesize(1_200, &PrefixLenDistribution::bgp_ipv4(), seed);
    let shared =
        SharedChisel::build(&table, ChiselConfig::ipv4().seed(seed)).expect("fault-free build");
    let mut oracle = OracleLpm::from_table(&table);
    let trace = adversarial_trace(&table, 3_000, seed ^ 0x5EED);

    let guard = arm(plan);
    let mut rejected = 0usize;
    for ev in &trace {
        match *ev {
            UpdateEvent::Announce(p, nh) => match shared.announce(p, nh) {
                Ok(_) => {
                    oracle.insert(p, nh);
                }
                Err(_) => rejected += 1,
            },
            UpdateEvent::Withdraw(p) => match shared.withdraw(p) {
                Ok(_) => {
                    oracle.remove(&p);
                }
                Err(_) => rejected += 1,
            },
        }
    }
    drop(guard);

    let report = shared.with_engine(|e| e.verify());
    assert!(
        report.is_ok(),
        "[{name} seed {seed}] invariants violated after {rejected} rejections:\n{report}"
    );
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
    for _ in 0..4_000 {
        let key = Key::from_raw(AddressFamily::V4, rng.gen::<u32>() as u128);
        assert_eq!(
            shared.lookup(key),
            oracle.lookup(key),
            "[{name} seed {seed}] lookup diverged from linear-scan oracle at {key}"
        );
    }
    let es = shared.engine_stats();
    if let DegradedMode::Degraded { parked_keys } = es.degraded {
        assert!(parked_keys > 0, "[{name} seed {seed}] empty degraded mode");
        assert!(
            es.recovery.degraded_parks > 0,
            "[{name} seed {seed}] degraded without a recorded park"
        );
    }
}

#[test]
fn fault_matrix_preserves_lookup_correctness() {
    for seed in seeds() {
        for (name, plan) in fault_plans(seed) {
            run_matrix_case(seed, name, plan);
        }
    }
}

#[test]
fn partial_update_fault_is_atomic_on_snapshot_path() {
    let table = synthesize(600, &PrefixLenDistribution::bgp_ipv4(), 41);
    let shared = SharedChisel::build(&table, ChiselConfig::ipv4()).expect("build");
    let mut oracle = OracleLpm::from_table(&table);
    let p = Prefix::new(AddressFamily::V4, 0x00AB_CDE, 24).expect("prefix");
    let key = p.first_key();
    let before = shared.lookup(key);
    let gen0 = shared.generation();

    let guard = arm(FaultPlan::new(7).with(faultpoint::PARTIAL_UPDATE, 1.0));
    let err = shared
        .announce(p, NextHop::new(77))
        .expect_err("partial-update fault must reject the announce");
    assert!(
        matches!(err, ChiselError::FaultInjected { .. }),
        "unexpected error: {err}"
    );
    // Nothing was published: same generation, same answers.
    assert_eq!(shared.generation(), gen0);
    assert_eq!(shared.lookup(key), before);
    let werr = shared
        .withdraw(p)
        .expect_err("partial-update fault must reject the withdraw");
    assert!(matches!(werr, ChiselError::FaultInjected { .. }));
    assert_eq!(shared.generation(), gen0);
    drop(guard);

    // Disarmed, the same update applies cleanly.
    shared
        .announce(p, NextHop::new(77))
        .expect("clean announce");
    oracle.insert(p, NextHop::new(77));
    assert_eq!(shared.lookup(key), oracle.lookup(key));
    assert!(shared.generation() > gen0);
}

/// A /20 table whose prefixes each collapse to their own Index Table
/// group, plus config with a deliberately tiny spillover TCAM.
fn tiny_spill_setup() -> (RoutingTable, ChiselLpm) {
    let mut t = RoutingTable::new_v4();
    for i in 0..8u128 {
        t.insert(
            Prefix::new(AddressFamily::V4, (0x0A00 + i) << 4, 20).expect("prefix"),
            NextHop::new(i as u32),
        );
    }
    let config = ChiselConfig::ipv4()
        .spill_capacity(2)
        .slack(8.0)
        .seed(3)
        .partitions(2);
    let engine = ChiselLpm::build(&t, config).expect("build");
    (t, engine)
}

fn parked_prefix(i: u128) -> Prefix {
    Prefix::new(AddressFamily::V4, (0x0B00 + i) << 4, 20).expect("prefix")
}

#[test]
fn spillover_exhaustion_is_typed_and_withdraw_reclaims() {
    let (t, mut e) = tiny_spill_setup();
    assert_eq!(e.spill_len(), 0, "build must not pre-fill the tiny TCAM");
    let baseline_len = e.len();
    let probes: Vec<Key> = t.iter().map(|r| r.prefix.first_key()).collect();
    let before: Vec<_> = probes.iter().map(|&k| e.lookup(k)).collect();

    // Force every new-key announce through a failing re-setup so it
    // parks in the spillover TCAM — until the TCAM is full.
    let guard = arm(FaultPlan::new(1)
        .with(faultpoint::NO_SINGLETON, 1.0)
        .with(faultpoint::SETUP_FAIL, 1.0));
    assert_eq!(
        e.announce(parked_prefix(0), NextHop::new(100))
            .expect("park 0"),
        UpdateKind::DegradedSpill
    );
    assert_eq!(
        e.announce(parked_prefix(1), NextHop::new(101))
            .expect("park 1"),
        UpdateKind::DegradedSpill
    );
    let err = e
        .announce(parked_prefix(2), NextHop::new(102))
        .expect_err("third park must overflow the 2-entry TCAM");
    assert!(
        matches!(
            err,
            ChiselError::SpilloverOverflow {
                needed: 3,
                capacity: 2
            }
        ),
        "unexpected error: {err}"
    );

    // The rejected announce left no trace: route count, existing
    // lookups, and the structural invariants are all unchanged.
    assert_eq!(e.len(), baseline_len + 2);
    for (k, b) in probes.iter().zip(&before) {
        assert_eq!(e.lookup(*k), *b, "pre-existing lookup changed at {k}");
    }
    assert_eq!(e.lookup(parked_prefix(2).first_key()), None);
    let report = e.verify();
    assert!(report.is_ok(), "{report}");

    // Parked keys answer through the TCAM, and the stats say so.
    assert_eq!(
        e.lookup(parked_prefix(0).first_key()),
        Some(NextHop::new(100))
    );
    let es = e.engine_stats();
    assert_eq!(es.degraded, DegradedMode::Degraded { parked_keys: 2 });
    assert!(es.recovery.resetup_failures >= 3, "{:?}", es.recovery);
    assert_eq!(es.recovery.degraded_parks, 2, "{:?}", es.recovery);
    assert!(es.recovery.rollbacks >= 1, "{:?}", es.recovery);

    // Withdrawing a parked prefix reclaims TCAM capacity even though its
    // partition re-setup failed: the next park fits again.
    e.withdraw(parked_prefix(0)).expect("withdraw parked");
    assert_eq!(e.spill_len(), 1);
    assert_eq!(e.lookup(parked_prefix(0).first_key()), None);
    assert_eq!(
        e.announce(parked_prefix(2), NextHop::new(102))
            .expect("park fits again"),
        UpdateKind::DegradedSpill
    );
    drop(guard);
    let report = e.verify();
    assert!(report.is_ok(), "{report}");
    assert!(e.engine_stats().recovery.degraded_reclaims >= 1);
}

#[test]
fn withdrawing_all_parked_keys_leaves_degraded_mode() {
    let (_, mut e) = tiny_spill_setup();
    let guard = arm(FaultPlan::new(2)
        .with(faultpoint::NO_SINGLETON, 1.0)
        .with(faultpoint::SETUP_FAIL, 1.0));
    e.announce(parked_prefix(0), NextHop::new(100))
        .expect("park");
    assert!(e.engine_stats().degraded.is_degraded());
    drop(guard);

    // The regression this guards: a withdraw of a prefix whose re-setup
    // failed must fully release its spillover entry, not leave a live
    // TCAM entry with no owning partition.
    e.withdraw(parked_prefix(0)).expect("withdraw parked");
    let es = e.engine_stats();
    assert_eq!(es.degraded, DegradedMode::Normal);
    assert_eq!(e.spill_len(), 0);
    assert!(es.recovery.degraded_reclaims >= 1, "{:?}", es.recovery);
    let report = e.verify();
    assert!(report.is_ok(), "{report}");

    // The freed capacity is usable by ordinary (un-faulted) updates.
    e.announce(parked_prefix(5), NextHop::new(9))
        .expect("clean announce");
    assert_eq!(
        e.lookup(parked_prefix(5).first_key()),
        Some(NextHop::new(9))
    );
}

#[test]
fn degraded_parks_surface_in_lookup_trace() {
    let (_, mut e) = tiny_spill_setup();
    let guard = arm(FaultPlan::new(5)
        .with(faultpoint::NO_SINGLETON, 1.0)
        .with(faultpoint::SETUP_FAIL, 1.0));
    e.announce(parked_prefix(0), NextHop::new(100))
        .expect("park");
    drop(guard);

    let mut trace = LookupTrace::default();
    let hop = e.lookup_traced(parked_prefix(0).first_key(), &mut trace);
    assert_eq!(hop, Some(NextHop::new(100)));
    assert!(trace.degraded_hits >= 1, "{trace:?}");
    assert!(trace.spill_hits >= trace.degraded_hits, "{trace:?}");

    // An address outside the parked group never touches a degraded entry.
    let mut clean = LookupTrace::default();
    e.lookup_traced(
        Key::from_raw(AddressFamily::V4, 0x0A00_0001 << 4),
        &mut clean,
    );
    assert_eq!(clean.degraded_hits, 0, "{clean:?}");
}

/// Every rebuild unit of a batched window fails its re-setup: the new
/// keys degrade into partition-local TCAM parks up to the budget (the
/// overflow rolls back as rejected events) while the *inline* half of
/// the window — next-hop changes on existing routes — commits untouched
/// and the window still publishes.
#[test]
fn batch_setup_failures_degrade_only_affected_partitions() {
    for seed in seeds() {
        let (t, mut e) = tiny_spill_setup();
        let baseline_len = e.len();

        // Inline half: re-point every existing route. Deferred half:
        // four brand-new keys that NO_SINGLETON forces through the
        // parallel re-setup machinery, where SETUP_FAIL kills every unit.
        let mut events: Vec<RouteUpdate> = t
            .iter()
            .enumerate()
            .map(|(i, r)| RouteUpdate::Announce(r.prefix, NextHop::new(40 + i as u32)))
            .collect();
        for i in 0..4u128 {
            events.push(RouteUpdate::Announce(
                parked_prefix(i),
                NextHop::new(100 + i as u32),
            ));
        }

        let guard = arm(FaultPlan::new(seed)
            .with(faultpoint::NO_SINGLETON, 1.0)
            .with(faultpoint::SETUP_FAIL, 1.0));
        let report = e.apply_batch(&events).expect("window must publish");
        drop(guard);

        let verify = e.verify();
        assert!(verify.is_ok(), "[seed {seed}] {verify}");
        assert!(
            report.parallel_resetups >= 1,
            "[seed {seed}] no rebuild units ran"
        );

        // Whatever the partition split of the four keys, the 2-entry
        // TCAM parks exactly two and the other two roll back, named in
        // the report.
        let es = e.engine_stats();
        assert!(es.recovery.resetup_failures >= 1, "[seed {seed}]");
        assert_eq!(es.degraded, DegradedMode::Degraded { parked_keys: 2 });
        assert_eq!(es.recovery.degraded_parks, 2, "[seed {seed}]");
        assert_eq!(report.rejected_events.len(), 2, "[seed {seed}]");
        assert_eq!(e.len(), baseline_len + 2, "[seed {seed}]");

        // The failed units' blast radius never reaches the inline ops.
        for (i, r) in t.iter().enumerate() {
            assert_eq!(
                e.lookup(r.prefix.first_key()),
                Some(NextHop::new(40 + i as u32)),
                "[seed {seed}] inline next-hop change lost at {}",
                r.prefix
            );
        }
        // Parked keys answer through the TCAM; rolled-back keys answer
        // exactly as if never announced.
        for i in 0..4u128 {
            let raw = t.len() + i as usize;
            let got = e.lookup(parked_prefix(i).first_key());
            if report.rejected_events.contains(&raw) {
                assert_eq!(got, None, "[seed {seed}] rolled-back key answers");
            } else {
                assert_eq!(
                    got,
                    Some(NextHop::new(100 + i as u32)),
                    "[seed {seed}] parked key lost"
                );
            }
        }
    }
}

/// With SETUP_FAIL at coin-flip odds, some seeds fail one rebuild unit
/// of a window while the sibling unit commits: the committed partition
/// gets real encodings, the failed one degrades, and the engine stays
/// verified either way. The seed sweep must exhibit at least one such
/// mixed window.
#[test]
fn batch_mixed_resetup_outcome_commits_healthy_units() {
    let mut mixed_seen = false;
    for seed in 1..=16u64 {
        let (t, mut e) = tiny_spill_setup();
        let baseline_len = e.len();
        let events: Vec<RouteUpdate> = (0..8u128)
            .map(|i| RouteUpdate::Announce(parked_prefix(i), NextHop::new(100 + i as u32)))
            .collect();

        let guard = arm(FaultPlan::new(seed)
            .with(faultpoint::NO_SINGLETON, 1.0)
            .with(faultpoint::SETUP_FAIL, 0.5));
        let report = e.apply_batch(&events).expect("window must publish");
        drop(guard);

        let verify = e.verify();
        assert!(verify.is_ok(), "[seed {seed}] {verify}");
        assert_eq!(
            e.len(),
            baseline_len + events.len() - report.rejected_events.len(),
            "[seed {seed}] length diverged from the report"
        );
        for i in 0..8u128 {
            let got = e.lookup(parked_prefix(i).first_key());
            if report.rejected_events.contains(&(i as usize)) {
                assert_eq!(got, None, "[seed {seed}] rejected key answers");
            } else {
                assert_eq!(
                    got,
                    Some(NextHop::new(100 + i as u32)),
                    "[seed {seed}] accepted key lost"
                );
            }
        }
        // Pre-existing routes are untouched by any outcome.
        for r in t.iter() {
            assert_eq!(e.lookup(r.prefix.first_key()), Some(r.next_hop));
        }

        let es = e.engine_stats();
        if report.kinds.resetups > 0 && es.recovery.resetup_failures > 0 {
            mixed_seen = true;
        }
    }
    assert!(
        mixed_seen,
        "no seed produced a window with both a committed and a failed unit"
    );
}

#[test]
fn alloc_pressure_fault_rejects_grow_without_corruption() {
    // A small table with no slack grows quickly; allocation pressure at
    // the grow site must reject the triggering announce pre-mutation.
    let mut t = RoutingTable::new_v4();
    for i in 0..16u128 {
        t.insert(
            Prefix::new(AddressFamily::V4, (0x0C00 + i) << 4, 20).expect("prefix"),
            NextHop::new(i as u32),
        );
    }
    let config = ChiselConfig::ipv4().slack(1.0).seed(11);
    let mut e = ChiselLpm::build(&t, config).expect("build");
    let mut oracle = OracleLpm::from_table(&t);

    let guard = arm(FaultPlan::new(3).with(faultpoint::ALLOC_PRESSURE, 1.0));
    let mut grow_rejections = 0usize;
    for i in 0..64u128 {
        let p = Prefix::new(AddressFamily::V4, (0x0D00 + i) << 4, 20).expect("prefix");
        match e.announce(p, NextHop::new(200 + i as u32)) {
            Ok(_) => {
                oracle.insert(p, NextHop::new(200 + i as u32));
            }
            Err(ChiselError::FaultInjected { site }) => {
                assert_eq!(site, faultpoint::ALLOC_PRESSURE);
                grow_rejections += 1;
            }
            Err(e) => panic!("unexpected rejection: {e}"),
        }
    }
    drop(guard);
    assert!(
        grow_rejections > 0,
        "the no-slack engine never tried to grow"
    );
    let report = e.verify();
    assert!(report.is_ok(), "{report}");
    for r in t.iter() {
        let k = r.prefix.first_key();
        assert_eq!(e.lookup(k), oracle.lookup(k), "diverged at {k}");
    }
}
