//! Property-based tests (proptest) on the core data structures and the
//! end-to-end LPM invariants.

use chisel::prefix::bits::mask;
use chisel::prefix::collapse::StridePlan;
use chisel::prefix::cpe::{expand_to_levels, optimal_levels};
use chisel::{AddressFamily, ChiselConfig, ChiselLpm, Key, NextHop, Prefix, RoutingTable};
use chisel_bloomier::BloomierFilter;
use chisel_core::{FlowCache, LeafVector};
use chisel_prefix::oracle::OracleLpm;
use proptest::prelude::*;

fn arb_prefix_v4() -> impl Strategy<Value = Prefix> {
    (0u8..=32, any::<u32>()).prop_map(|(len, raw)| {
        Prefix::new(AddressFamily::V4, (raw as u128) & mask(len), len).expect("masked bits fit")
    })
}

fn arb_table_v4(max: usize) -> impl Strategy<Value = RoutingTable> {
    proptest::collection::vec((arb_prefix_v4(), 0u32..64), 0..max).prop_map(|entries| {
        let mut t = RoutingTable::new_v4();
        for (p, nh) in entries {
            t.insert(p, NextHop::new(nh));
        }
        t
    })
}

fn arb_prefix_v6() -> impl Strategy<Value = Prefix> {
    (0u8..=64, any::<u64>()).prop_map(|(len, raw)| {
        Prefix::new(AddressFamily::V6, (raw as u128) & mask(len), len).expect("masked bits fit")
    })
}

fn arb_table_v6(max: usize) -> impl Strategy<Value = RoutingTable> {
    proptest::collection::vec((arb_prefix_v6(), 0u32..64), 0..max).prop_map(|entries| {
        let mut t = RoutingTable::new_v6();
        for (p, nh) in entries {
            t.insert(p, NextHop::new(nh));
        }
        t
    })
}

/// Asserts `lookup_batch` produces exactly what per-key `lookup` does —
/// uncached, and again through a deliberately tiny [`FlowCache`] (both
/// its scalar and batch paths), twice each so the second pass replays
/// from warm cache slots.
fn assert_batch_matches_scalar(engine: &ChiselLpm, keys: &[Key]) -> Result<(), TestCaseError> {
    let mut out = vec![None; keys.len()];
    engine.lookup_batch(keys, &mut out);
    for (k, o) in keys.iter().zip(&out) {
        prop_assert_eq!(*o, engine.lookup(*k), "key {:?}", k);
    }
    let mut cache = FlowCache::new(8);
    for pass in 0..2 {
        for k in keys {
            prop_assert_eq!(
                cache.lookup(engine, *k),
                engine.lookup(*k),
                "cached scalar pass {}, key {:?}",
                pass,
                k
            );
        }
        cache.lookup_batch(engine, keys, &mut out);
        for (k, o) in keys.iter().zip(&out) {
            prop_assert_eq!(
                *o,
                engine.lookup(*k),
                "cached batch pass {}, key {:?}",
                pass,
                k
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prefix_truncate_then_covers(p in arb_prefix_v4(), cut in 0u8..=32) {
        let cut = cut.min(p.len());
        let t = p.truncate(p.len() - cut);
        prop_assert!(t.covers(&p));
        // Truncation then extension with the dropped suffix restores p.
        let restored = t.extend(p.suffix_below(t.len()), p.len() - t.len());
        prop_assert_eq!(restored, p);
    }

    #[test]
    fn prefix_matches_iff_host_covered(p in arb_prefix_v4(), host in any::<u32>()) {
        let key = Key::from_raw(AddressFamily::V4, p.network() | (host as u128 & mask(32 - p.len())));
        prop_assert!(p.matches(key));
        // Any key differing in a prefix bit must not match.
        if !p.is_empty() {
            let flip = 1u128 << (32 - 1); // flip the top bit
            let other = Key::from_raw(AddressFamily::V4, key.value() ^ flip);
            prop_assert!(!p.matches(other) || p.is_empty());
        }
    }

    #[test]
    fn prefix_display_parse_roundtrip(p in arb_prefix_v4()) {
        let s = p.to_string();
        let back: Prefix = s.parse().expect("display output parses");
        prop_assert_eq!(back, p);
    }

    #[test]
    fn leaf_vector_rank_matches_naive(bits in proptest::collection::vec(any::<bool>(), 1..256)) {
        let stride = (usize::BITS - (bits.len() - 1).leading_zeros()).max(1) as u8;
        let mut v = LeafVector::new(stride);
        for (i, &b) in bits.iter().enumerate() {
            v.set(i, b);
        }
        let mut ones = 0usize;
        for (i, &b) in bits.iter().enumerate() {
            if b { ones += 1; }
            prop_assert_eq!(v.rank(i), ones);
        }
        prop_assert_eq!(v.count_ones(), bits.iter().filter(|&&b| b).count());
    }

    #[test]
    fn bloomier_encodes_exactly(keys in proptest::collection::hash_map(any::<u128>(), any::<u32>(), 1..200)) {
        let kv: Vec<(u128, u32)> = keys.into_iter().collect();
        let built = BloomierFilter::build(3, 3 * kv.len() + 8, 5, &kv).expect("builds");
        let spilled: std::collections::HashSet<u128> =
            built.spilled.iter().map(|&(k, _)| k).collect();
        for &(k, v) in &kv {
            if !spilled.contains(&k) {
                prop_assert_eq!(built.filter.lookup(k), v);
            }
        }
    }

    #[test]
    fn cpe_preserves_lpm(table in arb_table_v4(40), probes in proptest::collection::vec(any::<u32>(), 32)) {
        let hist = table.length_histogram();
        if hist.total() == 0 { return Ok(()); }
        let levels = optimal_levels(&hist, 4);
        let expanded = expand_to_levels(&table, &levels).expect("levels cover max");
        let before = OracleLpm::from_table(&table);
        let after = OracleLpm::from_table(&expanded.table);
        for raw in probes {
            let key = Key::from_raw(AddressFamily::V4, raw as u128);
            prop_assert_eq!(before.lookup(key), after.lookup(key));
        }
    }

    #[test]
    fn stride_plan_covers_all_lengths(stride in 1u8..=8) {
        let plan = StridePlan::uniform(1, 32, stride);
        for len in 1..=32u8 {
            let ci = plan.cell_for(len).expect("covered");
            let cell = plan.cells()[ci];
            prop_assert!(cell.base <= len && len <= cell.high());
            prop_assert!(cell.stride <= stride);
        }
    }

    #[test]
    fn chisel_matches_oracle_on_random_tables(
        table in arb_table_v4(60),
        probes in proptest::collection::vec(any::<u32>(), 64),
        stride in 1u8..=6,
    ) {
        let engine = ChiselLpm::build(&table, ChiselConfig::ipv4().stride(stride)).expect("builds");
        let oracle = OracleLpm::from_table(&table);
        for raw in probes {
            let key = Key::from_raw(AddressFamily::V4, raw as u128);
            prop_assert_eq!(engine.lookup(key), oracle.lookup(key));
        }
    }

    #[test]
    fn chisel_update_sequence_matches_oracle(
        ops in proptest::collection::vec((any::<bool>(), arb_prefix_v4(), 0u32..16), 1..80),
        probes in proptest::collection::vec(any::<u32>(), 32),
    ) {
        let mut engine = ChiselLpm::build(&RoutingTable::new_v4(), ChiselConfig::ipv4()).expect("builds");
        let mut oracle = OracleLpm::from_table(&RoutingTable::new_v4());
        for (announce, p, nh) in ops {
            if announce {
                engine.announce(p, NextHop::new(nh)).expect("announce");
                oracle.insert(p, NextHop::new(nh));
            } else {
                engine.withdraw(p).expect("withdraw");
                oracle.remove(&p);
            }
        }
        for raw in probes {
            let key = Key::from_raw(AddressFamily::V4, raw as u128);
            prop_assert_eq!(engine.lookup(key), oracle.lookup(key));
        }
    }

    #[test]
    fn mrt_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Arbitrary bytes must produce Ok or a structured error, never a
        // panic — parser robustness for real-world trace files.
        let _ = chisel::workloads::read_mrt(&bytes);
    }

    #[test]
    fn mrt_roundtrip(ops in proptest::collection::vec((any::<bool>(), arb_prefix_v4(), 0u32..1024), 0..40)) {
        let events: Vec<chisel::workloads::UpdateEvent> = ops
            .into_iter()
            .map(|(announce, p, nh)| {
                if announce {
                    chisel::workloads::UpdateEvent::Announce(p, NextHop::new(nh))
                } else {
                    chisel::workloads::UpdateEvent::Withdraw(p)
                }
            })
            .collect();
        let bytes = chisel::workloads::write_mrt(&events);
        prop_assert_eq!(chisel::workloads::read_mrt(&bytes).expect("own output parses"), events);
    }

    #[test]
    fn hardware_image_replays_engine(table in arb_table_v4(50), probes in proptest::collection::vec(any::<u32>(), 32)) {
        let engine = ChiselLpm::build(&table, ChiselConfig::ipv4()).expect("builds");
        let image = engine.export_image();
        for raw in probes {
            let key = Key::from_raw(AddressFamily::V4, raw as u128);
            prop_assert_eq!(image.lookup(key), engine.lookup(key));
        }
    }

    #[test]
    fn iter_routes_is_lossless(table in arb_table_v4(60)) {
        let engine = ChiselLpm::build(&table, ChiselConfig::ipv4()).expect("builds");
        let mut recovered = RoutingTable::new_v4();
        recovered.extend(engine.iter_routes());
        prop_assert_eq!(recovered, table);
    }

    #[test]
    fn lookup_batch_matches_scalar_v4(
        table in arb_table_v4(60),
        probes in proptest::collection::vec(any::<u32>(), 0..96),
        stride in 1u8..=6,
    ) {
        let engine = ChiselLpm::build(&table, ChiselConfig::ipv4().stride(stride)).expect("builds");
        let keys: Vec<Key> = probes
            .into_iter()
            .map(|raw| Key::from_raw(AddressFamily::V4, raw as u128))
            .collect();
        assert_batch_matches_scalar(&engine, &keys)?;
    }

    #[test]
    fn lookup_batch_matches_scalar_v6(
        table in arb_table_v6(40),
        probes in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let engine = ChiselLpm::build(&table, ChiselConfig::ipv6()).expect("builds");
        let keys: Vec<Key> = probes
            .into_iter()
            .map(|raw| Key::from_raw(AddressFamily::V6, raw as u128))
            .collect();
        assert_batch_matches_scalar(&engine, &keys)?;
    }

    #[test]
    fn lookup_batch_matches_scalar_after_updates(
        ops in proptest::collection::vec((any::<bool>(), arb_prefix_v4(), 0u32..16), 1..60),
        probes in proptest::collection::vec(any::<u32>(), 48),
    ) {
        let mut engine =
            ChiselLpm::build(&RoutingTable::new_v4(), ChiselConfig::ipv4()).expect("builds");
        for (announce, p, nh) in ops {
            if announce {
                engine.announce(p, NextHop::new(nh)).expect("announce");
            } else {
                engine.withdraw(p).expect("withdraw");
            }
        }
        let keys: Vec<Key> = probes
            .into_iter()
            .map(|raw| Key::from_raw(AddressFamily::V4, raw as u128))
            .collect();
        assert_batch_matches_scalar(&engine, &keys)?;
    }

    #[test]
    fn flow_cache_matches_uncached_across_updates(
        ops in proptest::collection::vec((any::<bool>(), arb_prefix_v4(), 0u32..16), 1..40),
        probes in proptest::collection::vec(any::<u32>(), 24),
    ) {
        // One cache surviving a whole update schedule: every announce or
        // withdraw must invalidate whatever it made stale (the probe set
        // is fixed, so earlier answers sit in the cache when later
        // updates change them).
        let mut engine =
            ChiselLpm::build(&RoutingTable::new_v4(), ChiselConfig::ipv4()).expect("builds");
        let mut cache = FlowCache::new(32);
        let keys: Vec<Key> = probes
            .into_iter()
            .map(|raw| Key::from_raw(AddressFamily::V4, raw as u128))
            .collect();
        for (announce, p, nh) in ops {
            if announce {
                engine.announce(p, NextHop::new(nh)).expect("announce");
            } else {
                engine.withdraw(p).expect("withdraw");
            }
            for k in &keys {
                prop_assert_eq!(cache.lookup(&engine, *k), engine.lookup(*k), "key {:?}", k);
            }
        }
    }
}

/// Deterministic edge sizes for the batch pipeline: empty, a single key,
/// around the internal lane width, and a >1024-key batch spanning many
/// pipeline chunks.
#[test]
fn lookup_batch_edge_sizes() {
    let mut table = RoutingTable::new_v4();
    for i in 0u32..48 {
        let p = Prefix::new(AddressFamily::V4, (0x0A00 + i) as u128, 16).expect("prefix");
        table.insert(p, NextHop::new(i));
    }
    let engine = ChiselLpm::build(&table, ChiselConfig::ipv4()).expect("builds");
    for size in [0usize, 1, 15, 16, 17, 1025, 2048] {
        let keys: Vec<Key> = (0..size)
            .map(|i| {
                let net = (0x0A00 + (i as u32 % 64)) as u128; // some miss the table
                Key::from_raw(AddressFamily::V4, (net << 16) | (i as u128 & 0xFFFF))
            })
            .collect();
        let mut out = vec![None; keys.len()];
        engine.lookup_batch(&keys, &mut out);
        for (k, o) in keys.iter().zip(&out) {
            assert_eq!(*o, engine.lookup(*k), "size {size}, key {k:?}");
        }
    }
}

#[test]
#[should_panic(expected = "lookup_batch requires matching key/output slices")]
fn lookup_batch_rejects_mismatched_out_len() {
    let engine = ChiselLpm::build(&RoutingTable::new_v4(), ChiselConfig::ipv4()).expect("builds");
    let keys = [Key::from_raw(AddressFamily::V4, 1)];
    let mut out = vec![None; 2];
    engine.lookup_batch(&keys, &mut out);
}
