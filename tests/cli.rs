//! End-to-end tests of the `chisel-router` binary: synth a table, build
//! an engine over it, run lookups, and replay an MRT trace — the whole
//! downstream-user path through real process invocations.

use std::process::Command;

fn router() -> Command {
    Command::new(env!("CARGO_BIN_EXE_chisel-router"))
}

fn tempdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("chisel-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir creates");
    dir
}

#[test]
fn synth_stats_lookup_roundtrip() {
    let dir = tempdir();
    let table = dir.join("table.txt");

    let out = router()
        .args(["synth", "3000", table.to_str().unwrap(), "42"])
        .output()
        .expect("synth runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = router()
        .args(["stats", table.to_str().unwrap()])
        .output()
        .expect("stats runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("3000 prefixes"), "{text}");
    assert!(text.contains("on-chip storage"), "{text}");

    // Look up the first prefix's network address: must route.
    let first = std::fs::read_to_string(&table).expect("table readable");
    let addr = first
        .lines()
        .next()
        .unwrap()
        .split('/')
        .next()
        .unwrap()
        .to_string();
    let out = router()
        .args(["lookup", table.to_str().unwrap(), &addr])
        .output()
        .expect("lookup runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("-> nh"), "{text}");
}

#[test]
fn replay_mrt_trace() {
    use chisel::workloads::{
        generate_trace, rrc_profiles, synthesize, write_mrt, PrefixLenDistribution,
    };

    let dir = tempdir();
    let table_path = dir.join("replay-table.txt");
    let trace_path = dir.join("trace.mrt");

    let table = synthesize(2_000, &PrefixLenDistribution::bgp_ipv4(), 9);
    let mut f = std::fs::File::create(&table_path).expect("table file");
    chisel::prefix::io::write_table(&mut f, &table).expect("table writes");
    let trace = generate_trace(&table, 5_000, &rrc_profiles()[0]);
    std::fs::write(&trace_path, write_mrt(&trace)).expect("trace writes");

    let out = router()
        .args([
            "replay",
            table_path.to_str().unwrap(),
            trace_path.to_str().unwrap(),
        ])
        .output()
        .expect("replay runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("5000 events"), "{text}");
    assert!(text.contains("incremental fraction"), "{text}");
}

#[test]
fn multi_addr_lookup_batches_like_scalar() {
    let dir = tempdir();
    let table = dir.join("batch-table.txt");
    let out = router()
        .args(["synth", "1000", table.to_str().unwrap(), "7"])
        .output()
        .expect("synth runs");
    assert!(out.status.success());

    // Addresses from the table plus guaranteed strangers.
    let text = std::fs::read_to_string(&table).expect("table readable");
    let mut addrs: Vec<String> = text
        .lines()
        .take(40)
        .map(|l| l.split('/').next().unwrap().to_string())
        .collect();
    addrs.push("203.0.113.77".into());

    // One multi-address invocation (batched) vs one invocation per
    // address (a single-key batch): identical routing answers, in order.
    let mut batched = router();
    batched.arg("lookup").arg(table.to_str().unwrap());
    for a in &addrs {
        batched.arg(a);
    }
    let batched = batched.output().expect("batched lookup runs");
    assert!(batched.status.success());
    let batched = String::from_utf8_lossy(&batched.stdout);

    let mut scalar = String::new();
    for a in &addrs {
        let out = router()
            .args(["lookup", table.to_str().unwrap(), a])
            .output()
            .expect("scalar lookup runs");
        assert!(out.status.success());
        scalar.push_str(&String::from_utf8_lossy(&out.stdout));
    }
    assert_eq!(batched, scalar);
    assert_eq!(batched.lines().count(), addrs.len());
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = router().output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    let out = router()
        .args(["lookup", "/nonexistent/table", "1.2.3.4"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}

#[test]
fn replay_with_no_trace_is_a_clean_noop() {
    // Regression: an empty replay (no MRT file, no adversarial stream)
    // used to die on the rate division; it must print the zeroed
    // counter summary and exit 0.
    let dir = tempdir();
    let table = dir.join("noop-table.txt");
    let out = router()
        .args(["synth", "500", table.to_str().unwrap(), "3"])
        .output()
        .expect("synth runs");
    assert!(out.status.success());

    let out = router()
        .args(["replay", table.to_str().unwrap()])
        .output()
        .expect("empty replay runs");
    assert!(
        out.status.success(),
        "empty replay must exit 0: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0 events"), "{text}");
    assert!(text.contains("(0 updates/s)"), "{text}");
    assert!(text.contains("published generation: 0"), "{text}");
    assert!(text.contains("recovery: 0 re-setup attempts"), "{text}");
    assert!(text.contains("degraded mode: normal"), "{text}");
}

#[test]
fn serve_runs_the_sharded_daemon_to_a_balanced_drain() {
    let dir = tempdir();
    let table = dir.join("serve-table.txt");
    let out = router()
        .args(["synth", "2000", table.to_str().unwrap(), "13"])
        .output()
        .expect("synth runs");
    assert!(out.status.success());

    let out = router()
        .args([
            "serve",
            table.to_str().unwrap(),
            "--shards",
            "2",
            "--duration",
            "0.3",
            "--adversarial=2000",
        ])
        .output()
        .expect("serve runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("dataplane: 2 shard(s)"), "{text}");
    assert!(text.contains("shard 0:"), "{text}");
    assert!(text.contains("shard 1:"), "{text}");
    assert!(text.contains("control:"), "{text}");
    assert!(text.contains("Msps"), "{text}");
    assert!(
        text.contains("counters balanced (hits + misses == lookups)"),
        "{text}"
    );
    assert!(!text.contains("IMBALANCE"), "{text}");
}

#[test]
fn serve_with_journal_drains_to_a_recoverable_checkpoint() {
    let dir = tempdir();
    let table = dir.join("durable-table.txt");
    let journal = dir.join("serve.journal");
    let out = router()
        .args(["synth", "1500", table.to_str().unwrap(), "17"])
        .output()
        .expect("synth runs");
    assert!(out.status.success());

    let out = router()
        .args([
            "serve",
            table.to_str().unwrap(),
            "--shards",
            "2",
            "--duration",
            "0.3",
            "--adversarial=1500",
            "--journal",
            journal.to_str().unwrap(),
            "--checkpoint-every",
            "256",
        ])
        .output()
        .expect("durable serve runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("durable: journal"), "{text}");
    assert!(text.contains("(final checkpoint at drain)"), "{text}");
    assert!(
        text.contains("counters balanced (hits + misses == lookups)"),
        "{text}"
    );
    assert!(journal.exists(), "journal file must exist after serve");
    let ckpt = dir.join("serve.journal.ckpt");
    assert!(
        ckpt.exists(),
        "default checkpoint sibling must exist after drain"
    );

    // The drain checkpoint makes the run recoverable with an empty tail.
    let out = router()
        .args(["recover", "--journal", journal.to_str().unwrap()])
        .output()
        .expect("recover runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0 journal record(s) replayed"), "{text}");
    assert!(text.contains("final generation:"), "{text}");
    assert!(text.contains("recover: engine serves"), "{text}");
}

#[test]
fn recover_truncates_torn_tails_and_rejects_interior_damage() {
    use chisel::core::journal::{DurableControl, DurableOptions};
    use chisel::core::SharedChisel;
    use chisel::{AddressFamily, ChiselConfig, NextHop, Prefix, RoutingTable};

    // Build a crashed-process state in-library: checkpoint plus a
    // journal tail that never saw a final checkpoint.
    let dir = tempdir();
    let journal = dir.join("crashed.journal");
    let mut t = RoutingTable::new_v4();
    t.insert(
        Prefix::new(AddressFamily::V4, 0x0A, 8).unwrap(),
        NextHop::new(1),
    );
    let shared = SharedChisel::build(&t, ChiselConfig::ipv4()).unwrap();
    let opts = DurableOptions {
        fsync: false,
        ..DurableOptions::at(&journal, 0)
    };
    let mut dc = DurableControl::create(shared, opts).unwrap();
    for i in 0..12u128 {
        dc.announce(
            Prefix::new(AddressFamily::V4, 0x0A00 | i, 16).unwrap(),
            NextHop::new(10 + i as u32),
        )
        .unwrap();
    }
    drop(dc); // crash: journal holds 12 records past the boot checkpoint

    let out = router()
        .args(["recover", "--journal", journal.to_str().unwrap()])
        .output()
        .expect("recover runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("12 journal record(s) replayed"), "{text}");
    assert!(text.contains("final generation: 12"), "{text}");

    // Torn tail: recovery still exits 0, one generation short.
    let bytes = std::fs::read(&journal).expect("journal readable");
    std::fs::write(&journal, &bytes[..bytes.len() - 5]).unwrap();
    let out = router()
        .args(["recover", "--journal", journal.to_str().unwrap()])
        .output()
        .expect("recover runs on torn journal");
    assert!(
        out.status.success(),
        "torn tails are recoverable: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("final generation: 11"), "{text}");
    assert!(!text.contains("0 torn byte(s)"), "{text}");

    // Interior damage: flip a byte mid-journal — typed failure, exit ≠ 0.
    let mut corrupt = bytes.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0xFF;
    std::fs::write(&journal, &corrupt).unwrap();
    let out = router()
        .args(["recover", "--journal", journal.to_str().unwrap()])
        .output()
        .expect("recover runs on corrupt journal");
    assert!(
        !out.status.success(),
        "interior corruption must fail recovery"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}

#[cfg(unix)]
#[test]
fn sigint_drains_serve_gracefully_with_a_final_checkpoint() {
    use std::io::Read;
    use std::time::{Duration, Instant};

    let dir = tempdir();
    let table = dir.join("sig-table.txt");
    let journal = dir.join("sig.journal");
    let out = router()
        .args(["synth", "1000", table.to_str().unwrap(), "19"])
        .output()
        .expect("synth runs");
    assert!(out.status.success());

    // `--duration 0`: the signal is the only way out.
    let mut child = router()
        .args([
            "serve",
            table.to_str().unwrap(),
            "--shards",
            "2",
            "--duration",
            "0",
            "--adversarial=1000",
            "--journal",
            journal.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("serve spawns");

    // Give the daemon time to build and start serving, then interrupt.
    std::thread::sleep(Duration::from_millis(1500));
    let kill = std::process::Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(kill.success(), "failed to deliver SIGINT");

    // Watchdog: a graceful drain takes well under 30s; a hang means the
    // stop flag never reached the feed loop.
    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => break status,
            None if Instant::now() > deadline => {
                let _ = child.kill();
                panic!("serve did not drain within 30s of SIGINT");
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    };
    let mut text = String::new();
    child
        .stdout
        .take()
        .expect("stdout piped")
        .read_to_string(&mut text)
        .expect("stdout readable");
    assert!(status.success(), "SIGINT drain must exit 0: {text}");
    assert!(
        text.contains("counters balanced (hits + misses == lookups)"),
        "{text}"
    );
    assert!(text.contains("(final checkpoint at drain)"), "{text}");

    // And the checkpoint the drain wrote is immediately recoverable.
    let out = router()
        .args(["recover", "--journal", journal.to_str().unwrap()])
        .output()
        .expect("recover runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn check_verifies_synthesized_table() {
    let dir = tempdir();
    let table = dir.join("check-table.txt");
    let out = router()
        .args(["synth", "5000", table.to_str().unwrap(), "11"])
        .output()
        .expect("synth runs");
    assert!(out.status.success());

    let out = router()
        .args(["check", table.to_str().unwrap()])
        .output()
        .expect("check runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0 violation(s)"), "{text}");
    assert!(text.contains("0 mismatch(es)"), "{text}");
    assert!(text.contains("all invariants hold"), "{text}");
}
