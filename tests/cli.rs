//! End-to-end tests of the `chisel-router` binary: synth a table, build
//! an engine over it, run lookups, and replay an MRT trace — the whole
//! downstream-user path through real process invocations.

use std::process::Command;

fn router() -> Command {
    Command::new(env!("CARGO_BIN_EXE_chisel-router"))
}

fn tempdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("chisel-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir creates");
    dir
}

#[test]
fn synth_stats_lookup_roundtrip() {
    let dir = tempdir();
    let table = dir.join("table.txt");

    let out = router()
        .args(["synth", "3000", table.to_str().unwrap(), "42"])
        .output()
        .expect("synth runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = router()
        .args(["stats", table.to_str().unwrap()])
        .output()
        .expect("stats runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("3000 prefixes"), "{text}");
    assert!(text.contains("on-chip storage"), "{text}");

    // Look up the first prefix's network address: must route.
    let first = std::fs::read_to_string(&table).expect("table readable");
    let addr = first
        .lines()
        .next()
        .unwrap()
        .split('/')
        .next()
        .unwrap()
        .to_string();
    let out = router()
        .args(["lookup", table.to_str().unwrap(), &addr])
        .output()
        .expect("lookup runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("-> nh"), "{text}");
}

#[test]
fn replay_mrt_trace() {
    use chisel::workloads::{
        generate_trace, rrc_profiles, synthesize, write_mrt, PrefixLenDistribution,
    };

    let dir = tempdir();
    let table_path = dir.join("replay-table.txt");
    let trace_path = dir.join("trace.mrt");

    let table = synthesize(2_000, &PrefixLenDistribution::bgp_ipv4(), 9);
    let mut f = std::fs::File::create(&table_path).expect("table file");
    chisel::prefix::io::write_table(&mut f, &table).expect("table writes");
    let trace = generate_trace(&table, 5_000, &rrc_profiles()[0]);
    std::fs::write(&trace_path, write_mrt(&trace)).expect("trace writes");

    let out = router()
        .args([
            "replay",
            table_path.to_str().unwrap(),
            trace_path.to_str().unwrap(),
        ])
        .output()
        .expect("replay runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("5000 events"), "{text}");
    assert!(text.contains("incremental fraction"), "{text}");
}

#[test]
fn multi_addr_lookup_batches_like_scalar() {
    let dir = tempdir();
    let table = dir.join("batch-table.txt");
    let out = router()
        .args(["synth", "1000", table.to_str().unwrap(), "7"])
        .output()
        .expect("synth runs");
    assert!(out.status.success());

    // Addresses from the table plus guaranteed strangers.
    let text = std::fs::read_to_string(&table).expect("table readable");
    let mut addrs: Vec<String> = text
        .lines()
        .take(40)
        .map(|l| l.split('/').next().unwrap().to_string())
        .collect();
    addrs.push("203.0.113.77".into());

    // One multi-address invocation (batched) vs one invocation per
    // address (a single-key batch): identical routing answers, in order.
    let mut batched = router();
    batched.arg("lookup").arg(table.to_str().unwrap());
    for a in &addrs {
        batched.arg(a);
    }
    let batched = batched.output().expect("batched lookup runs");
    assert!(batched.status.success());
    let batched = String::from_utf8_lossy(&batched.stdout);

    let mut scalar = String::new();
    for a in &addrs {
        let out = router()
            .args(["lookup", table.to_str().unwrap(), a])
            .output()
            .expect("scalar lookup runs");
        assert!(out.status.success());
        scalar.push_str(&String::from_utf8_lossy(&out.stdout));
    }
    assert_eq!(batched, scalar);
    assert_eq!(batched.lines().count(), addrs.len());
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = router().output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    let out = router()
        .args(["lookup", "/nonexistent/table", "1.2.3.4"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}

#[test]
fn replay_with_no_trace_is_a_clean_noop() {
    // Regression: an empty replay (no MRT file, no adversarial stream)
    // used to die on the rate division; it must print the zeroed
    // counter summary and exit 0.
    let dir = tempdir();
    let table = dir.join("noop-table.txt");
    let out = router()
        .args(["synth", "500", table.to_str().unwrap(), "3"])
        .output()
        .expect("synth runs");
    assert!(out.status.success());

    let out = router()
        .args(["replay", table.to_str().unwrap()])
        .output()
        .expect("empty replay runs");
    assert!(
        out.status.success(),
        "empty replay must exit 0: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0 events"), "{text}");
    assert!(text.contains("(0 updates/s)"), "{text}");
    assert!(text.contains("published generation: 0"), "{text}");
    assert!(text.contains("recovery: 0 re-setup attempts"), "{text}");
    assert!(text.contains("degraded mode: normal"), "{text}");
}

#[test]
fn serve_runs_the_sharded_daemon_to_a_balanced_drain() {
    let dir = tempdir();
    let table = dir.join("serve-table.txt");
    let out = router()
        .args(["synth", "2000", table.to_str().unwrap(), "13"])
        .output()
        .expect("synth runs");
    assert!(out.status.success());

    let out = router()
        .args([
            "serve",
            table.to_str().unwrap(),
            "--shards",
            "2",
            "--duration",
            "0.3",
            "--adversarial=2000",
        ])
        .output()
        .expect("serve runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("dataplane: 2 shard(s)"), "{text}");
    assert!(text.contains("shard 0:"), "{text}");
    assert!(text.contains("shard 1:"), "{text}");
    assert!(text.contains("control:"), "{text}");
    assert!(text.contains("Msps"), "{text}");
    assert!(
        text.contains("counters balanced (hits + misses == lookups)"),
        "{text}"
    );
    assert!(!text.contains("IMBALANCE"), "{text}");
}

#[test]
fn check_verifies_synthesized_table() {
    let dir = tempdir();
    let table = dir.join("check-table.txt");
    let out = router()
        .args(["synth", "5000", table.to_str().unwrap(), "11"])
        .output()
        .expect("synth runs");
    assert!(out.status.success());

    let out = router()
        .args(["check", table.to_str().unwrap()])
        .output()
        .expect("check runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0 violation(s)"), "{text}");
    assert!(text.contains("0 mismatch(es)"), "{text}");
    assert!(text.contains("all invariants hold"), "{text}");
}
