//! Adversarial / worst-case integration tests: the deterministic
//! guarantees the paper claims must hold under hostile prefix
//! distributions, not just BGP-shaped ones.

use chisel::prefix::bits::mask;
use chisel::{AddressFamily, ChiselConfig, ChiselLpm, Key, NextHop, Prefix, RoutingTable};
use chisel_prefix::oracle::OracleLpm;

fn p(bits: u128, len: u8) -> Prefix {
    Prefix::new(AddressFamily::V4, bits, len).unwrap()
}

#[test]
fn all_prefixes_in_one_cell() {
    // Every prefix at the same length: a single sub-cell absorbs the
    // whole table and lookups stay collision-free.
    let mut table = RoutingTable::new_v4();
    for i in 0..5_000u128 {
        table.insert(p(i, 24), NextHop::new(i as u32));
    }
    let engine = ChiselLpm::build(&table, ChiselConfig::ipv4()).unwrap();
    let oracle = OracleLpm::from_table(&table);
    for i in (0..5_000u128).step_by(7) {
        let key = Key::from_raw(AddressFamily::V4, i << 8 | 0x55);
        assert_eq!(engine.lookup(key), oracle.lookup(key));
    }
}

#[test]
fn fully_saturated_group() {
    // 2^stride + 1 prefixes that all collapse onto ONE Index Table key:
    // the group's bit-vector must disambiguate every leaf.
    let stride = 4u8;
    let base = 20u8;
    let parent = 0xABCDEu128 & mask(base); // some /20
    let mut table = RoutingTable::new_v4();
    table.insert(p(parent, base), NextHop::new(999));
    for leaf in 0..(1u128 << stride) {
        table.insert(
            p((parent << stride) | leaf, base + stride),
            NextHop::new(leaf as u32),
        );
    }
    let engine = ChiselLpm::build(
        &table,
        ChiselConfig::ipv4()
            .stride(stride)
            .plan(chisel::prefix::collapse::StridePlan::uniform(1, 32, stride)),
    )
    .unwrap();
    let oracle = OracleLpm::from_table(&table);
    for leaf in 0..(1u128 << stride) {
        let key = Key::from_raw(
            AddressFamily::V4,
            ((parent << stride) | leaf) << (32 - base - stride),
        );
        assert_eq!(engine.lookup(key), oracle.lookup(key), "leaf {leaf}");
        assert_eq!(engine.lookup(key), Some(NextHop::new(leaf as u32)));
    }
}

#[test]
fn deeply_nested_chain() {
    // One prefix at every length 1..=32 along one path: LPM must always
    // return the deepest cover.
    let path: u128 = 0b1010_1100_0011_0101_1010_1100_0011_0101;
    let mut table = RoutingTable::new_v4();
    for len in 1..=32u8 {
        table.insert(p(path >> (32 - len), len), NextHop::new(len as u32));
    }
    let engine = ChiselLpm::build(&table, ChiselConfig::ipv4()).unwrap();
    // Exact-path key matches the /32.
    assert_eq!(
        engine.lookup(Key::from_raw(AddressFamily::V4, path)),
        Some(NextHop::new(32))
    );
    // Diverging at bit i (0-indexed from MSB) matches the length-i prefix.
    let oracle = OracleLpm::from_table(&table);
    for i in 1..32u8 {
        let key = Key::from_raw(
            AddressFamily::V4,
            path ^ (1u128 << (32 - 1 - i as u32 as u8)),
        );
        assert_eq!(engine.lookup(key), oracle.lookup(key), "diverge at bit {i}");
        assert_eq!(
            engine.lookup(key),
            Some(NextHop::new(i as u32)),
            "diverge at bit {i}"
        );
    }
}

#[test]
fn tiny_index_forces_spillover_but_stays_correct() {
    // m/n barely above 1 forces peel failures; spilled keys must still
    // resolve through the spillover TCAM.
    let mut table = RoutingTable::new_v4();
    for i in 0..2_000u128 {
        table.insert(p(i, 24), NextHop::new(i as u32));
    }
    let config = ChiselConfig::ipv4()
        .m_per_key(1.05)
        .slack(1.0)
        .spill_capacity(4_096);
    let engine = ChiselLpm::build(&table, config).unwrap();
    assert!(engine.spill_len() > 0, "expected spillover at m/n=1.05");
    let oracle = OracleLpm::from_table(&table);
    for i in 0..2_000u128 {
        let key = Key::from_raw(AddressFamily::V4, i << 8 | 1);
        assert_eq!(engine.lookup(key), oracle.lookup(key), "prefix {i}");
    }
}

#[test]
fn spillover_overflow_is_reported() {
    let mut table = RoutingTable::new_v4();
    for i in 0..4_000u128 {
        table.insert(p(i, 24), NextHop::new(i as u32));
    }
    let config = ChiselConfig::ipv4()
        .m_per_key(1.0)
        .slack(1.0)
        .spill_capacity(0);
    match ChiselLpm::build(&table, config) {
        Err(chisel::core::ChiselError::SpilloverOverflow { .. }) => {}
        Ok(engine) => {
            // Peeling can still succeed at m = n occasionally; then there
            // must be zero spills.
            assert_eq!(engine.spill_len(), 0);
        }
        Err(e) => panic!("unexpected error {e}"),
    }
}

#[test]
fn growth_under_sustained_announces() {
    // Build tiny, then announce far past the provisioned capacity: the
    // engine must grow (resetup) and stay correct throughout.
    let mut engine = ChiselLpm::build(&RoutingTable::new_v4(), ChiselConfig::ipv4()).unwrap();
    let mut oracle = OracleLpm::from_table(&RoutingTable::new_v4());
    for i in 0..3_000u128 {
        let prefix = p(i, 24);
        engine.announce(prefix, NextHop::new(i as u32)).unwrap();
        oracle.insert(prefix, NextHop::new(i as u32));
    }
    assert_eq!(engine.len(), 3_000);
    for i in (0..3_000u128).step_by(11) {
        let key = Key::from_raw(AddressFamily::V4, i << 8);
        assert_eq!(engine.lookup(key), oracle.lookup(key));
    }
}

#[test]
fn withdraw_everything_then_reannounce() {
    let mut table = RoutingTable::new_v4();
    for i in 0..500u128 {
        table.insert(p(i, 20), NextHop::new(i as u32));
    }
    let mut engine = ChiselLpm::build(&table, ChiselConfig::ipv4()).unwrap();
    for i in 0..500u128 {
        engine.withdraw(p(i, 20)).unwrap();
    }
    assert_eq!(engine.len(), 0);
    for i in 0..500u128 {
        let key = Key::from_raw(AddressFamily::V4, i << 12);
        assert_eq!(engine.lookup(key), None, "stale route for {i}");
    }
    // Re-announce (route flaps restore through dirty bits).
    for i in 0..500u128 {
        engine
            .announce(p(i, 20), NextHop::new(1000 + i as u32))
            .unwrap();
    }
    let stats = engine.update_stats();
    assert!(
        stats.route_flaps >= 450,
        "most re-announces should be dirty-bit flaps: {stats:?}"
    );
    for i in 0..500u128 {
        let key = Key::from_raw(AddressFamily::V4, i << 12);
        assert_eq!(engine.lookup(key), Some(NextHop::new(1000 + i as u32)));
    }
}

#[test]
fn worst_case_sizing_guarantee_holds() {
    // The paper's worst-case claim: the architecture holds n prefixes
    // regardless of distribution. Three hostile distributions, same
    // config, must all build and serve.
    let n = 2_000u128;
    let hostile: Vec<RoutingTable> = vec![
        // (a) all at one length
        {
            let mut t = RoutingTable::new_v4();
            for i in 0..n {
                t.insert(p(i, 28), NextHop::new(i as u32));
            }
            t
        },
        // (b) maximal nesting: chains of 32
        {
            let mut t = RoutingTable::new_v4();
            let mut i = 0u128;
            'outer: for seed in 0..n {
                let path = seed.wrapping_mul(0x9E37_79B9) & mask(32);
                for len in 1..=32u8 {
                    t.insert(p(path >> (32 - len), len), NextHop::new(len as u32));
                    i += 1;
                    if i >= n {
                        break 'outer;
                    }
                }
            }
            t
        },
        // (c) dense sibling fan: all 2^11 prefixes of length 11
        {
            let mut t = RoutingTable::new_v4();
            for i in 0..(1u128 << 11) {
                t.insert(p(i, 11), NextHop::new(i as u32));
            }
            t
        },
    ];
    for (i, table) in hostile.iter().enumerate() {
        let engine = ChiselLpm::build(table, ChiselConfig::ipv4()).unwrap();
        let oracle = OracleLpm::from_table(table);
        for seed in 0..1_000u128 {
            let key = Key::from_raw(AddressFamily::V4, seed.wrapping_mul(0xDEAD_BEEF) & mask(32));
            assert_eq!(engine.lookup(key), oracle.lookup(key), "distribution {i}");
        }
    }
}
