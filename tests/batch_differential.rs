//! Differential tests for the batched update engine: replaying a trace
//! through `ChiselLpm::apply_batch` in windows must be observationally
//! equivalent to applying it one event at a time — same answers as the
//! reference oracle, same recovered route set, same verifier pass — for
//! every window size, and a whole window must publish atomically (a
//! reader pinned mid-batch sees the pre- or post-window generation,
//! never a torn intermediate).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

use chisel::core::{verify_image, BatchPlan, RouteUpdate, SharedChisel};
use chisel::prefix::bits::mask;
use chisel::workloads::{
    generate_trace, rrc_profiles, synthesize, PrefixLenDistribution, UpdateEvent,
};
use chisel::{AddressFamily, ChiselConfig, ChiselLpm, Key, NextHop, Prefix, RoutingTable};
use chisel_prefix::oracle::OracleLpm;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const WINDOWS: [usize; 4] = [1, 16, 64, 256];

/// Runs both verifier passes (engine-side and image-side) and fails the
/// test with the full violation report on any broken invariant.
#[track_caller]
fn assert_verified(e: &ChiselLpm) {
    let report = e.verify();
    assert!(report.is_ok(), "engine invariants violated:\n{report}");
    let image = verify_image(&e.export_image());
    assert!(image.is_ok(), "image invariants violated:\n{image}");
}

fn to_route(ev: &UpdateEvent) -> RouteUpdate {
    match *ev {
        UpdateEvent::Announce(p, nh) => RouteUpdate::Announce(p, nh),
        UpdateEvent::Withdraw(p) => RouteUpdate::Withdraw(p),
    }
}

/// The engine's logical route set, as comparable (prefix, next-hop) data.
fn route_set(e: &ChiselLpm) -> BTreeMap<(u8, u128), u32> {
    e.iter_routes()
        .map(|r| ((r.prefix.len(), r.prefix.bits()), r.next_hop.id()))
        .collect()
}

/// Keys biased into covered space (half the time) so deep prefixes get
/// exercised, not just misses.
fn probe_keys(rng: &mut StdRng, table: &RoutingTable, n: usize) -> Vec<Key> {
    let prefixes: Vec<_> = table.iter().map(|e| e.prefix).collect();
    let width = table.family().width();
    (0..n)
        .map(|_| {
            if prefixes.is_empty() || rng.gen_bool(0.5) {
                Key::from_raw(table.family(), rng.gen::<u128>() & mask(width))
            } else {
                let p = prefixes[rng.gen_range(0..prefixes.len())];
                let host = rng.gen::<u128>() & mask(width - p.len());
                Key::from_raw(table.family(), p.network() | host)
            }
        })
        .collect()
}

/// Trace replay across all five collector profiles and every window
/// size: batched application must land on exactly the sequential state.
#[test]
fn batched_replay_matches_sequential_across_profiles_and_windows() {
    for profile in rrc_profiles() {
        let table = synthesize(
            2_000,
            &PrefixLenDistribution::bgp_ipv4(),
            0x0D1F ^ profile.seed,
        );
        let trace = generate_trace(&table, 2_000, &profile);
        let base = ChiselLpm::build(&table, ChiselConfig::ipv4()).unwrap();

        // The sequential reference and the independent oracle.
        let mut seq = base.clone();
        let mut oracle = OracleLpm::from_table(&table);
        for ev in &trace {
            match *ev {
                UpdateEvent::Announce(p, nh) => {
                    seq.announce(p, nh).expect("sequential announce");
                    oracle.insert(p, nh);
                }
                UpdateEvent::Withdraw(p) => {
                    seq.withdraw(p).expect("sequential withdraw");
                    oracle.remove(&p);
                }
            }
        }
        assert_verified(&seq);
        let want = route_set(&seq);

        let mut rng = StdRng::seed_from_u64(0x9999 ^ profile.seed);
        let probes = probe_keys(&mut rng, &table, 1_000);
        for window in WINDOWS {
            let mut e = base.clone();
            for chunk in trace.chunks(window) {
                let events: Vec<RouteUpdate> = chunk.iter().map(to_route).collect();
                let report = e.apply_batch(&events).expect("apply_batch");
                assert!(
                    report.rejected_events.is_empty(),
                    "{} window {window}: rejected {:?}",
                    profile.name,
                    report.rejected_events
                );
            }
            assert_verified(&e);
            assert_eq!(
                route_set(&e),
                want,
                "{} window {window}: route set diverged from sequential",
                profile.name
            );
            for &key in &probes {
                assert_eq!(
                    e.lookup(key),
                    oracle.lookup(key),
                    "{} window {window} at {key}",
                    profile.name
                );
            }
        }
    }
}

/// The planner and the engine counters must both show coalescing doing
/// real work on the flap-heavy collector mixes (withdraw + re-announce
/// of the same prefix inside one window collapses to one residual op).
#[test]
fn coalescing_fires_on_rrc_flap_profiles() {
    for profile in rrc_profiles() {
        let table = synthesize(
            1_000,
            &PrefixLenDistribution::bgp_ipv4(),
            0x0C0A ^ profile.seed,
        );
        let trace = generate_trace(&table, 2_000, &profile);
        let windows: Vec<Vec<RouteUpdate>> = trace
            .chunks(64)
            .map(|chunk| chunk.iter().map(to_route).collect())
            .collect();
        let planned: usize = windows.iter().map(|w| BatchPlan::of(w).coalesced()).sum();
        assert!(
            planned > 0,
            "{}: planner coalesced nothing over {} windows",
            profile.name,
            windows.len()
        );
        let mut e = ChiselLpm::build(&table, ChiselConfig::ipv4()).unwrap();
        for w in &windows {
            e.apply_batch(w).expect("apply_batch");
        }
        let b = e.batch_stats();
        assert_eq!(b.batches_published, windows.len() as u64);
        assert_eq!(b.events_ingested, trace.len() as u64);
        assert_eq!(
            b.events_coalesced, planned as u64,
            "{}: engine counter disagrees with the planner",
            profile.name
        );
    }
}

/// Snapshot atomicity: concurrent readers pinning snapshots mid-replay
/// must only ever observe generations the writer published — whole
/// window boundaries — with exactly the answers the writer saw there.
#[test]
fn pinned_readers_only_see_whole_windows() {
    let profile = rrc_profiles()[3]; // rrc08, the flap-heaviest mix
    let table = synthesize(1_500, &PrefixLenDistribution::bgp_ipv4(), 0x0A70);
    let trace = generate_trace(&table, 4_000, &profile);
    let shared = SharedChisel::build(&table, ChiselConfig::ipv4()).unwrap();
    let mut rng = StdRng::seed_from_u64(0x0A71);
    let probes = probe_keys(&mut rng, &table, 48);

    let answers = |snap: &chisel::core::EngineSnapshot| -> Vec<Option<NextHop>> {
        probes.iter().map(|&k| snap.lookup(k)).collect()
    };
    let mut expected: BTreeMap<u64, Vec<Option<NextHop>>> = BTreeMap::new();
    let snap0 = shared.snapshot();
    expected.insert(snap0.generation(), answers(&snap0));
    drop(snap0);

    let stop = AtomicBool::new(false);
    let samples = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..2)
            .map(|_| {
                scope.spawn(|| {
                    let mut seen: Vec<(u64, Vec<Option<NextHop>>)> = Vec::new();
                    while !stop.load(Ordering::Acquire) {
                        let snap = shared.snapshot();
                        seen.push((snap.generation(), answers(&snap)));
                    }
                    seen
                })
            })
            .collect();
        for chunk in trace.chunks(64) {
            let events: Vec<RouteUpdate> = chunk.iter().map(to_route).collect();
            shared.apply_batch(&events).expect("apply_batch");
            let snap = shared.snapshot();
            expected.insert(snap.generation(), answers(&snap));
        }
        stop.store(true, Ordering::Release);
        readers
            .into_iter()
            .flat_map(|r| r.join().expect("reader thread"))
            .collect::<Vec<_>>()
    });
    assert!(!samples.is_empty());
    for (generation, got) in samples {
        let want = expected
            .get(&generation)
            .unwrap_or_else(|| panic!("reader saw unpublished generation {generation}"));
        assert_eq!(
            &got, want,
            "torn window observed at generation {generation}"
        );
    }
}

fn arb_prefix_v4() -> impl Strategy<Value = Prefix> {
    (0u8..=32, any::<u32>()).prop_map(|(len, raw)| {
        Prefix::new(AddressFamily::V4, (raw as u128) & mask(len), len).expect("masked bits fit")
    })
}

fn arb_ops() -> impl Strategy<Value = Vec<RouteUpdate>> {
    proptest::collection::vec((any::<bool>(), arb_prefix_v4(), 0u32..16), 1..120).prop_map(|ops| {
        ops.into_iter()
            .map(|(announce, p, nh)| {
                if announce {
                    RouteUpdate::Announce(p, NextHop::new(nh))
                } else {
                    RouteUpdate::Withdraw(p)
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random op soups (duplicate announces, withdraw-before-announce,
    /// same-prefix churn, default routes) at random window sizes: the
    /// batched engine must land on the sequential engine's exact state.
    #[test]
    fn batched_equals_sequential_on_random_ops(
        ops in arb_ops(),
        window in 1usize..=64,
        probes in proptest::collection::vec(any::<u32>(), 32),
    ) {
        let empty = RoutingTable::new_v4();
        let mut seq = ChiselLpm::build(&empty, ChiselConfig::ipv4()).expect("builds");
        for op in &ops {
            match *op {
                RouteUpdate::Announce(p, nh) => { seq.announce(p, nh).expect("announce"); }
                RouteUpdate::Withdraw(p) => { seq.withdraw(p).expect("withdraw"); }
            }
        }
        let mut bat = ChiselLpm::build(&empty, ChiselConfig::ipv4()).expect("builds");
        for chunk in ops.chunks(window) {
            let report = bat.apply_batch(chunk).expect("apply_batch");
            prop_assert!(report.rejected_events.is_empty());
            prop_assert_eq!(report.ingested, chunk.len());
        }
        prop_assert_eq!(route_set(&bat), route_set(&seq));
        for raw in probes {
            let key = Key::from_raw(AddressFamily::V4, raw as u128);
            prop_assert_eq!(bat.lookup(key), seq.lookup(key), "key {:?}", key);
        }
        let report = bat.verify();
        prop_assert!(report.is_ok(), "batched engine failed verify:\n{}", report);
    }
}
