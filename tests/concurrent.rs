//! Multi-threaded torture tests for the lock-free snapshot read path.
//!
//! The central check is *snapshot-granularity linearizability*: every
//! published generation corresponds to a prefix of the update trace, so a
//! reader that pins generation `g` must see exactly the routing state the
//! oracle reaches after replaying the first `g` trace events — for every
//! probe key, scalar and batched. A bare `lookup` on the shared handle is
//! weaker only in *which* snapshot it hits: the answer must match one of
//! the generations published between the call's start and end.
//!
//! Everything is deterministic: the trace and probe set come from a
//! seeded RNG, and the expected answer table is precomputed offline by
//! replaying the trace through the reference `OracleLpm`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use chisel::core::snapshot::SnapshotCell;
use chisel::core::SharedChisel;
use chisel::prefix::oracle::OracleLpm;
use chisel::workloads::UpdateEvent;
use chisel::{AddressFamily, ChiselConfig, Key, NextHop, Prefix, RoutingTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FLAP_PREFIXES: usize = 64;
const UPDATES: usize = 600;
const READERS: usize = 4;

/// Base table: a stable /8 plus a fan of /16s under it, and a /16 parent
/// above every flap /24 so withdraws fall back to a covering route.
fn base_table() -> RoutingTable {
    let mut t = RoutingTable::new_v4();
    t.insert(
        Prefix::new(AddressFamily::V4, 0x0A, 8).unwrap(),
        NextHop::new(1),
    );
    for i in 0..256u128 {
        t.insert(
            Prefix::new(AddressFamily::V4, 0x0A00 | i, 16).unwrap(),
            NextHop::new(10 + i as u32),
        );
    }
    for i in 0..FLAP_PREFIXES as u128 {
        t.insert(
            Prefix::new(AddressFamily::V4, 0xF000 | i, 16).unwrap(),
            NextHop::new(500 + i as u32),
        );
    }
    t
}

fn flap_prefix(i: usize) -> Prefix {
    Prefix::new(AddressFamily::V4, 0xF0_0000 | i as u128, 24).unwrap()
}

/// A deterministic announce/withdraw flap over the /24 children.
fn flap_trace(seed: u64) -> Vec<UpdateEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..UPDATES)
        .map(|ev| {
            let p = flap_prefix(rng.gen_range(0..FLAP_PREFIXES));
            if rng.gen_bool(0.7) {
                UpdateEvent::Announce(p, NextHop::new(1000 + ev as u32))
            } else {
                UpdateEvent::Withdraw(p)
            }
        })
        .collect()
}

/// Probe keys that actually change answers across the trace: one host
/// inside each flap /24, plus hosts in the stable 10.0.0.0/8 fan.
fn probe_keys() -> Vec<Key> {
    let mut keys: Vec<Key> = (0..FLAP_PREFIXES)
        .map(|i| Key::from_raw(AddressFamily::V4, flap_prefix(i).network() | 0x2A))
        .collect();
    keys.extend(
        (0..16u128).map(|i| Key::from_raw(AddressFamily::V4, ((0x0A00 | (i * 17)) << 16) | 0x0101)),
    );
    keys
}

/// Replays the trace on the oracle, recording the full expected answer
/// vector after every event: `expected[g]` is the routing state readers
/// must observe at generation `g`.
fn expected_by_generation(
    table: &RoutingTable,
    trace: &[UpdateEvent],
    keys: &[Key],
) -> Vec<Vec<Option<NextHop>>> {
    let mut oracle = OracleLpm::from_table(table);
    let snapshot = |o: &OracleLpm| keys.iter().map(|&k| o.lookup(k)).collect::<Vec<_>>();
    let mut expected = vec![snapshot(&oracle)];
    for ev in trace {
        match ev {
            UpdateEvent::Announce(p, nh) => oracle.insert(*p, *nh),
            UpdateEvent::Withdraw(p) => {
                oracle.remove(p);
            }
        }
        expected.push(snapshot(&oracle));
    }
    expected
}

/// N readers differentially check every pinned snapshot against the
/// oracle's per-generation answers while the writer flaps routes.
#[test]
fn readers_see_only_published_generations() {
    let table = base_table();
    let trace = flap_trace(0xC0FFEE);
    let keys = Arc::new(probe_keys());
    let expected = Arc::new(expected_by_generation(&table, &trace, &keys));

    let shared = SharedChisel::build(&table, ChiselConfig::ipv4().seed(7).slack(3.0))
        .expect("engine builds");
    // Sanity: generation 0 already matches the oracle on every probe.
    for (k, want) in keys.iter().zip(&expected[0]) {
        assert_eq!(shared.lookup(*k), *want);
    }

    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let shared = shared.clone();
            let keys = Arc::clone(&keys);
            let expected = Arc::clone(&expected);
            let done = Arc::clone(&done);
            thread::spawn(move || {
                let mut max_gen = 0u64;
                let mut rounds = 0usize;
                let mut out = vec![None; keys.len()];
                while !done.load(Ordering::SeqCst) || rounds == 0 {
                    // Pinned snapshot: every probe — scalar and batched —
                    // must match the oracle at exactly this generation.
                    let snap = shared.snapshot();
                    let g = snap.generation() as usize;
                    let want = &expected[g];
                    for (j, &k) in keys.iter().enumerate() {
                        assert_eq!(
                            snap.lookup(k),
                            want[j],
                            "reader {r}: generation {g} scalar diverged on key {j}"
                        );
                    }
                    snap.lookup_batch(&keys, &mut out);
                    assert_eq!(
                        &out, want,
                        "reader {r}: generation {g} batch diverged from oracle"
                    );
                    max_gen = max_gen.max(g as u64);

                    // Bare handle lookups: the answer must belong to one
                    // of the generations published during the call.
                    let j = rounds % keys.len();
                    let g0 = shared.generation() as usize;
                    let got = shared.lookup(keys[j]);
                    let g1 = shared.generation() as usize;
                    assert!(
                        (g0..=g1).any(|g| expected[g][j] == got),
                        "reader {r}: lookup answer {got:?} for key {j} matches no \
                         generation in [{g0}, {g1}]"
                    );

                    // Bare batch: the whole vector must be internally
                    // consistent — one single generation in the window.
                    let g0 = shared.generation() as usize;
                    shared.lookup_batch(&keys, &mut out);
                    let g1 = shared.generation() as usize;
                    assert!(
                        (g0..=g1).any(|g| expected[g] == out),
                        "reader {r}: batch mixed state from several generations \
                         (window [{g0}, {g1}])"
                    );
                    rounds += 1;
                }
                (max_gen, rounds)
            })
        })
        .collect();

    for (i, ev) in trace.iter().enumerate() {
        match ev {
            UpdateEvent::Announce(p, nh) => {
                shared.announce(*p, *nh).expect("announce applies");
            }
            UpdateEvent::Withdraw(p) => {
                shared.withdraw(*p).expect("withdraw applies");
            }
        }
        assert_eq!(shared.generation(), (i + 1) as u64);
    }
    done.store(true, Ordering::SeqCst);

    let mut observed_max = 0;
    for r in readers {
        let (max_gen, rounds) = r.join().expect("reader panicked");
        assert!(rounds > 0);
        observed_max = observed_max.max(max_gen);
    }
    // Readers genuinely ran concurrently with (or after) the flap: at
    // least one saw a late generation, and the final state is exact.
    assert!(observed_max > 0, "no reader ever saw an update");
    assert_eq!(shared.generation(), UPDATES as u64);
    let snap = shared.snapshot();
    for (k, want) in keys.iter().zip(&expected[UPDATES]) {
        assert_eq!(snap.lookup(*k), *want);
    }
}

/// Writers from several threads: the writer mutex serializes them, every
/// successful update gets a distinct generation, and the union of all
/// updates is visible at the end.
#[test]
fn concurrent_writers_serialize_cleanly() {
    let shared = SharedChisel::build(&base_table(), ChiselConfig::ipv4().seed(7).slack(3.0))
        .expect("engine builds");
    let writers: Vec<_> = (0..4usize)
        .map(|w| {
            let shared = shared.clone();
            thread::spawn(move || {
                for i in 0..50u128 {
                    let p = Prefix::new(AddressFamily::V4, 0xE0_0000 | (w as u128) << 8 | i, 24)
                        .unwrap();
                    shared
                        .announce(p, NextHop::new((w * 100 + i as usize) as u32))
                        .expect("announce applies");
                }
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer panicked");
    }
    assert_eq!(shared.generation(), 200);
    for w in 0..4u128 {
        for i in 0..50u128 {
            let key = Key::from_raw(AddressFamily::V4, (0xE0_0000 | w << 8 | i) << 8 | 0x7);
            assert_eq!(shared.lookup(key), Some(NextHop::new((w * 100 + i) as u32)));
        }
    }
}

/// Payload whose invariant would break if a reader ever saw a torn or
/// reclaimed snapshot: `b` must always be `2 * a + 1`.
struct Paired {
    a: u64,
    b: u64,
}

/// Raw `SnapshotCell` interleaving stress: two writers storm the cell
/// while readers pin guards, re-read through them, and hold owned Arcs
/// across many swaps. Run under TSan/Miri this exercises the epoch
/// reclamation ordering argument in `chisel_core::snapshot`.
#[test]
fn snapshot_cell_swap_storm() {
    let cell = Arc::new(SnapshotCell::new(Arc::new(Paired { a: 0, b: 1 })));
    let stop = Arc::new(AtomicBool::new(false));
    let published = Arc::new(AtomicU64::new(0));

    let writers: Vec<_> = (0..2)
        .map(|w| {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            let published = Arc::clone(&published);
            thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(w);
                while !stop.load(Ordering::SeqCst) {
                    let a = rng.gen::<u32>() as u64;
                    cell.store(Arc::new(Paired { a, b: 2 * a + 1 }));
                    published.fetch_add(1, Ordering::SeqCst);
                }
            })
        })
        .collect();

    let readers: Vec<_> = (0..4)
        .map(|_| {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut checks = 0usize;
                while !stop.load(Ordering::SeqCst) || checks == 0 {
                    // A pinned guard must stay stable across re-reads even
                    // while the writers retire snapshot after snapshot.
                    let g = cell.load();
                    let (a, b) = (g.a, g.b);
                    assert_eq!(b, 2 * a + 1, "torn or reclaimed snapshot observed");
                    assert_eq!(g.a, a, "guard target changed under the reader");
                    assert_eq!(g.b, b, "guard target changed under the reader");
                    drop(g);

                    // An owned Arc must outlive any number of later swaps.
                    let own = cell.load_owned();
                    let (a, b) = (own.a, own.b);
                    std::hint::black_box(&own);
                    assert_eq!(own.b, 2 * own.a + 1);
                    assert_eq!((own.a, own.b), (a, b));
                    checks += 1;
                }
                checks
            })
        })
        .collect();

    std::thread::sleep(std::time::Duration::from_millis(200));
    stop.store(true, Ordering::SeqCst);
    for w in writers {
        w.join().expect("writer panicked");
    }
    for r in readers {
        assert!(r.join().expect("reader panicked") > 0);
    }
    assert!(published.load(Ordering::SeqCst) > 0);
    // Quiescent: with no guards pinned, one final store reclaims every
    // retired snapshot except the one it just replaced.
    cell.store(Arc::new(Paired { a: 7, b: 15 }));
    cell.collect();
    assert_eq!(cell.retired_len(), 0, "quiescent reclamation left garbage");
    assert_eq!(cell.load().a, 7);
}

/// An owned snapshot taken before a burst of updates answers from its own
/// generation even after the shared handle has moved hundreds of
/// generations ahead and reclaimed the intermediates.
#[test]
fn held_snapshot_survives_reclamation_burst() {
    let shared = SharedChisel::build(&base_table(), ChiselConfig::ipv4().seed(7).slack(3.0))
        .expect("engine builds");
    let keys = probe_keys();
    let snap0 = shared.snapshot();
    let before: Vec<_> = keys.iter().map(|&k| snap0.lookup(k)).collect();

    for i in 0..300usize {
        let p = flap_prefix(i % FLAP_PREFIXES);
        if i % 3 == 0 {
            shared.withdraw(p).expect("withdraw applies");
        } else {
            shared
                .announce(p, NextHop::new(2000 + i as u32))
                .expect("announce applies");
        }
    }

    assert_eq!(snap0.generation(), 0);
    let after: Vec<_> = keys.iter().map(|&k| snap0.lookup(k)).collect();
    assert_eq!(before, after, "held snapshot changed under the holder");
    assert_eq!(shared.generation(), 300);
}
