//! Corruption fuzzing for the hardware-image loader and the update
//! journal scanner.
//!
//! The loader's contract (ISSUE 5): loading a serialized image must
//! *never* panic, and must never yield an engine that passes the image
//! verifier yet answers lookups differently from the image the bytes
//! came from. This suite drives that contract three ways — a
//! deterministic 10k-bit-flip sweep, an exhaustive truncation sweep, and
//! proptest-generated garbage/mutations — against a small engine so the
//! whole file stays fast in debug tier-1 runs.
//!
//! The journal scanner (ISSUE 10) carries the sibling contract: scanning
//! a damaged journal must never panic, an `Ok` scan must return a
//! byte-exact *prefix* of the original record sequence (torn tails are
//! truncated, never invented), and interior damage must surface as a
//! typed error — so the same three fuzz modes run against journal bytes
//! too.

use std::sync::OnceLock;

use chisel::core::journal::{scan_journal, JournalRecord, JournalWriter};
use chisel::core::{verify_image, HardwareImage, ImageError, RouteUpdate};
use chisel::prefix::bits::mask;
use chisel::{AddressFamily, ChiselConfig, ChiselLpm, Key, NextHop, Prefix, RoutingTable};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One small engine (≈300 prefixes), its canonical bytes, and a probe
/// set with expected answers — built once for the whole suite.
struct Baseline {
    bytes: Vec<u8>,
    probes: Vec<(Key, Option<NextHop>)>,
}

fn baseline() -> &'static Baseline {
    static CELL: OnceLock<Baseline> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x1A6E);
        let mut t = RoutingTable::new_v4();
        while t.len() < 300 {
            let len = rng.gen_range(1..=32u8);
            let bits = rng.gen::<u128>() & mask(len);
            t.insert(
                Prefix::new(AddressFamily::V4, bits, len).expect("masked bits fit"),
                NextHop::new(rng.gen_range(0..64)),
            );
        }
        let engine = ChiselLpm::build(&t, ChiselConfig::ipv4()).expect("build");
        let image = engine.export_image();
        let bytes = image.to_bytes();
        let probes = (0..2_000)
            .map(|_| {
                let key = Key::from_raw(AddressFamily::V4, rng.gen::<u32>() as u128);
                (key, image.lookup(key))
            })
            .collect();
        Baseline { bytes, probes }
    })
}

/// The load-side contract check for one (possibly corrupted) byte
/// stream: loading must not panic, and if the loader accepts the bytes
/// AND the structural verifier passes, every probe must still answer
/// exactly as the original image did.
fn assert_contract(bytes: &[u8], what: &str) {
    match HardwareImage::from_bytes(bytes) {
        Err(_) => {} // typed rejection is always acceptable
        Ok(img) => {
            if verify_image(&img).is_ok() {
                for &(key, want) in &baseline().probes {
                    assert_eq!(
                        img.lookup(key),
                        want,
                        "{what}: verifier-passing image answers {key} differently"
                    );
                }
            }
        }
    }
}

#[test]
fn canonical_bytes_round_trip() {
    let b = baseline();
    let img = HardwareImage::from_bytes(&b.bytes).expect("canonical bytes load");
    let report = verify_image(&img);
    assert!(report.is_ok(), "{report}");
    assert_eq!(img.to_bytes(), b.bytes, "round trip must be byte-exact");
    for &(key, want) in &b.probes {
        assert_eq!(img.lookup(key), want);
    }
}

#[test]
fn truncations_are_rejected_without_panic() {
    let b = baseline();
    // Every short length near the front (where the frame fields live),
    // then stepped through the body.
    for len in (0..200.min(b.bytes.len())).chain((200..b.bytes.len()).step_by(97)) {
        let got = HardwareImage::from_bytes(&b.bytes[..len]);
        assert!(got.is_err(), "truncation to {len} bytes was accepted");
    }
}

#[test]
fn ten_thousand_bit_flips_never_panic_or_lie() {
    let b = baseline();
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    let mut accepted = 0usize;
    for round in 0..10_000 {
        // xorshift64*: deterministic byte/bit choices, no clock, no env.
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        let r = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let byte = (r as usize >> 8) % b.bytes.len();
        let bit = (r & 7) as u8;
        let mut mutated = b.bytes.clone();
        mutated[byte] ^= 1 << bit;
        if HardwareImage::from_bytes(&mutated).is_ok() {
            accepted += 1;
        }
        assert_contract(
            &mutated,
            &format!("bit flip #{round} (byte {byte} bit {bit})"),
        );
    }
    // The checksums make single-bit acceptance astronomically unlikely;
    // if flips start passing, the framing has regressed.
    assert_eq!(accepted, 0, "single-bit flips slipped past the checksums");
}

#[test]
fn typed_rejections_name_the_damage() {
    let b = baseline();
    let mut magic = b.bytes.clone();
    magic[2] = b'X';
    assert_eq!(
        HardwareImage::from_bytes(&magic).unwrap_err(),
        ImageError::BadMagic
    );

    let mut version = b.bytes.clone();
    version[4] = 0x39;
    version[5] = 0x05;
    assert_eq!(
        HardwareImage::from_bytes(&version).unwrap_err(),
        ImageError::UnsupportedVersion { version: 0x0539 }
    );

    // Magic(4) + version(2) + header frame(12) = header body at 18.
    let mut checksum = b.bytes.clone();
    checksum[18] ^= 0x01;
    assert_eq!(
        HardwareImage::from_bytes(&checksum).unwrap_err(),
        ImageError::ChecksumMismatch { section: "header" }
    );

    let mut trailing = b.bytes.clone();
    trailing.extend_from_slice(&[0, 0, 0]);
    assert_eq!(
        HardwareImage::from_bytes(&trailing).unwrap_err(),
        ImageError::Malformed { what: "image" }
    );

    assert_eq!(
        HardwareImage::from_bytes(&[]).unwrap_err(),
        ImageError::Truncated { what: "magic" }
    );
}

/// A cell section that lies about its blocked Index Table geometry —
/// with the frame checksum recomputed so the lie is *internally
/// consistent* — must still be rejected with the typed geometry error.
/// This is the case integrity checking alone cannot catch: the loader
/// has to cross-check the declared block size against the entry width.
#[test]
fn consistent_blocked_geometry_lie_is_rejected() {
    let b = baseline();
    let hlen = u64::from_le_bytes(b.bytes[6..14].try_into().unwrap()) as usize;
    let cell = 18 + hlen;
    let clen = u64::from_le_bytes(b.bytes[cell..cell + 8].try_into().unwrap()) as usize;
    let mut body = b.bytes[cell + 12..cell + 12 + clen].to_vec();
    // Cell body: base 1 + stride 1 + selector 20 + part count 4 + part
    // family 20 + entry width 4 puts the layout tag at 50.
    assert_eq!(body[50], 1, "default engine images use the blocked layout");
    let declared = u32::from_le_bytes(body[51..55].try_into().unwrap());
    body[51..55].copy_from_slice(&(declared + 1).to_le_bytes());
    let mut forged = b.bytes[..cell].to_vec();
    forged.extend((body.len() as u64).to_le_bytes());
    let mut sum = 0x811C_9DC5u32; // FNV-1a, same as the wire format
    for &byte in &body {
        sum ^= u32::from(byte);
        sum = sum.wrapping_mul(0x0100_0193);
    }
    forged.extend(sum.to_le_bytes());
    forged.extend_from_slice(&body);
    forged.extend_from_slice(&b.bytes[cell + 12 + clen..]);
    assert_eq!(
        HardwareImage::from_bytes(&forged).unwrap_err(),
        ImageError::BlockGeometryMismatch {
            declared: declared + 1,
            expected: declared,
        }
    );
}

/// Canonical journal bytes (64 records over a /24 flap set, mixed
/// announce/withdraw, two events per record) plus the parsed records —
/// built once, through the real writer, for the whole suite.
struct JournalBaseline {
    bytes: Vec<u8>,
    records: Vec<JournalRecord>,
}

fn journal_baseline() -> &'static JournalBaseline {
    static CELL: OnceLock<JournalBaseline> = OnceLock::new();
    CELL.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("chisel-jfuzz-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("baseline.journal");
        let mut rng = StdRng::seed_from_u64(0x0CC5);
        let mut writer =
            JournalWriter::create(&path, AddressFamily::V4, false).expect("journal create");
        for generation in 1..=64u64 {
            let events: Vec<RouteUpdate> = (0..2)
                .map(|_| {
                    let p = Prefix::new(
                        AddressFamily::V4,
                        0xC0_0000 | u128::from(rng.gen_range(0..64u32)),
                        24,
                    )
                    .expect("masked bits fit");
                    if rng.gen_bool(0.7) {
                        RouteUpdate::Announce(p, NextHop::new(rng.gen_range(0..64)))
                    } else {
                        RouteUpdate::Withdraw(p)
                    }
                })
                .collect();
            writer.append(generation, &events).expect("append");
        }
        drop(writer);
        let bytes = std::fs::read(&path).expect("read journal back");
        let records = scan_journal(&bytes).expect("canonical scan").records;
        assert_eq!(records.len(), 64);
        JournalBaseline { bytes, records }
    })
}

/// The scan-side contract for one (possibly corrupted) journal stream:
/// scanning must not panic, and an `Ok` scan must hand back a prefix of
/// the original records with the byte accounting intact — corruption may
/// shorten history, never rewrite or extend it.
fn assert_journal_contract(bytes: &[u8], what: &str) {
    let original = &journal_baseline().records;
    match scan_journal(bytes) {
        Err(_) => {} // typed rejection is always acceptable
        Ok(scan) => {
            if scan.family != AddressFamily::V4 {
                // The one-byte family tag is not checksummed at scan
                // level; `read_journal`'s expected-family cross-check
                // (driven off the checkpoint) is the guard. A flip here
                // must still have actually hit that byte.
                assert_ne!(bytes[6], 4, "{what}: family changed without tag damage");
                return;
            }
            assert!(
                scan.records.len() <= original.len(),
                "{what}: scan invented records"
            );
            assert_eq!(
                scan.records,
                original[..scan.records.len()],
                "{what}: accepted records are not a prefix of the originals"
            );
            assert_eq!(
                scan.valid_len + scan.truncated_bytes,
                bytes.len() as u64,
                "{what}: byte accounting leaks"
            );
        }
    }
}

#[test]
fn journal_truncations_replay_a_prefix_at_every_cut() {
    let b = journal_baseline();
    for len in 0..b.bytes.len() {
        match scan_journal(&b.bytes[..len]) {
            Ok(scan) => {
                assert_eq!(scan.records, b.records[..scan.records.len()]);
                assert_eq!(scan.valid_len + scan.truncated_bytes, len as u64);
                // A cut strictly inside record k's frame keeps records
                // 0..k; only a cut at a frame boundary keeps everything
                // scanned so far with no torn remainder.
                if scan.truncated_bytes == 0 {
                    assert_eq!(scan.valid_len, len as u64);
                }
            }
            // Every cut of a well-formed journal is a torn tail, never
            // corruption — even inside the 7-byte header (died
            // mid-create: empty scan).
            Err(e) => panic!("cut at {len} was rejected as corruption: {e}"),
        }
    }
}

#[test]
fn journal_bit_flips_never_panic_or_rewrite_history() {
    let b = journal_baseline();
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let mut clean = 0usize;
    for round in 0..10_000 {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        let r = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let byte = (r as usize >> 8) % b.bytes.len();
        let bit = (r & 7) as u8;
        let mut mutated = b.bytes.clone();
        mutated[byte] ^= 1 << bit;
        if scan_journal(&mutated)
            .is_ok_and(|s| s.family == AddressFamily::V4 && s.records == b.records)
        {
            clean += 1;
        }
        assert_journal_contract(
            &mutated,
            &format!("journal bit flip #{round} (byte {byte} bit {bit})"),
        );
    }
    assert_eq!(
        clean, 0,
        "single-bit flips slipped past the record checksums"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary garbage never panics the journal scanner.
    #[test]
    fn journal_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..768)) {
        let _ = scan_journal(&bytes);
    }

    /// Multi-byte splices into a canonical journal keep the
    /// prefix-replay contract: damaged history shrinks, never mutates.
    #[test]
    fn journal_splices_keep_prefix_contract(
        offset in any::<u32>(),
        splice in proptest::collection::vec(any::<u8>(), 1..24),
    ) {
        let b = journal_baseline();
        let at = offset as usize % b.bytes.len();
        let mut mutated = b.bytes.clone();
        for (i, &v) in splice.iter().enumerate() {
            if at + i < mutated.len() {
                mutated[at + i] = v;
            }
        }
        assert_journal_contract(&mutated, "journal splice");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary garbage never panics the loader.
    #[test]
    fn random_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..768)) {
        let _ = HardwareImage::from_bytes(&bytes);
    }

    /// Garbage wearing the right magic and version still cannot panic
    /// or smuggle in a wrong-but-verifying engine.
    #[test]
    fn framed_garbage_never_panics(body in proptest::collection::vec(any::<u8>(), 0..768)) {
        let mut bytes = Vec::with_capacity(body.len() + 6);
        bytes.extend(*b"CHSL");
        bytes.extend(2u16.to_le_bytes());
        bytes.extend(&body);
        assert_contract(&bytes, "framed garbage");
    }

    /// Multi-byte splices into the canonical stream (a harsher model
    /// than single-bit flips) keep the load contract.
    #[test]
    fn spliced_corruption_keeps_contract(
        offset in any::<u32>(),
        splice in proptest::collection::vec(any::<u8>(), 1..24),
    ) {
        let b = baseline();
        let at = offset as usize % b.bytes.len();
        let mut mutated = b.bytes.clone();
        for (i, &v) in splice.iter().enumerate() {
            if at + i < mutated.len() {
                mutated[at + i] = v;
            }
        }
        assert_contract(&mutated, "splice");
    }
}
