//! Corruption fuzzing for the hardware-image loader.
//!
//! The loader's contract (ISSUE 5): loading a serialized image must
//! *never* panic, and must never yield an engine that passes the image
//! verifier yet answers lookups differently from the image the bytes
//! came from. This suite drives that contract three ways — a
//! deterministic 10k-bit-flip sweep, an exhaustive truncation sweep, and
//! proptest-generated garbage/mutations — against a small engine so the
//! whole file stays fast in debug tier-1 runs.

use std::sync::OnceLock;

use chisel::core::{verify_image, HardwareImage, ImageError};
use chisel::prefix::bits::mask;
use chisel::{AddressFamily, ChiselConfig, ChiselLpm, Key, NextHop, Prefix, RoutingTable};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One small engine (≈300 prefixes), its canonical bytes, and a probe
/// set with expected answers — built once for the whole suite.
struct Baseline {
    bytes: Vec<u8>,
    probes: Vec<(Key, Option<NextHop>)>,
}

fn baseline() -> &'static Baseline {
    static CELL: OnceLock<Baseline> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x1A6E);
        let mut t = RoutingTable::new_v4();
        while t.len() < 300 {
            let len = rng.gen_range(1..=32u8);
            let bits = rng.gen::<u128>() & mask(len);
            t.insert(
                Prefix::new(AddressFamily::V4, bits, len).expect("masked bits fit"),
                NextHop::new(rng.gen_range(0..64)),
            );
        }
        let engine = ChiselLpm::build(&t, ChiselConfig::ipv4()).expect("build");
        let image = engine.export_image();
        let bytes = image.to_bytes();
        let probes = (0..2_000)
            .map(|_| {
                let key = Key::from_raw(AddressFamily::V4, rng.gen::<u32>() as u128);
                (key, image.lookup(key))
            })
            .collect();
        Baseline { bytes, probes }
    })
}

/// The load-side contract check for one (possibly corrupted) byte
/// stream: loading must not panic, and if the loader accepts the bytes
/// AND the structural verifier passes, every probe must still answer
/// exactly as the original image did.
fn assert_contract(bytes: &[u8], what: &str) {
    match HardwareImage::from_bytes(bytes) {
        Err(_) => {} // typed rejection is always acceptable
        Ok(img) => {
            if verify_image(&img).is_ok() {
                for &(key, want) in &baseline().probes {
                    assert_eq!(
                        img.lookup(key),
                        want,
                        "{what}: verifier-passing image answers {key} differently"
                    );
                }
            }
        }
    }
}

#[test]
fn canonical_bytes_round_trip() {
    let b = baseline();
    let img = HardwareImage::from_bytes(&b.bytes).expect("canonical bytes load");
    let report = verify_image(&img);
    assert!(report.is_ok(), "{report}");
    assert_eq!(img.to_bytes(), b.bytes, "round trip must be byte-exact");
    for &(key, want) in &b.probes {
        assert_eq!(img.lookup(key), want);
    }
}

#[test]
fn truncations_are_rejected_without_panic() {
    let b = baseline();
    // Every short length near the front (where the frame fields live),
    // then stepped through the body.
    for len in (0..200.min(b.bytes.len())).chain((200..b.bytes.len()).step_by(97)) {
        let got = HardwareImage::from_bytes(&b.bytes[..len]);
        assert!(got.is_err(), "truncation to {len} bytes was accepted");
    }
}

#[test]
fn ten_thousand_bit_flips_never_panic_or_lie() {
    let b = baseline();
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    let mut accepted = 0usize;
    for round in 0..10_000 {
        // xorshift64*: deterministic byte/bit choices, no clock, no env.
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        let r = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let byte = (r as usize >> 8) % b.bytes.len();
        let bit = (r & 7) as u8;
        let mut mutated = b.bytes.clone();
        mutated[byte] ^= 1 << bit;
        if HardwareImage::from_bytes(&mutated).is_ok() {
            accepted += 1;
        }
        assert_contract(
            &mutated,
            &format!("bit flip #{round} (byte {byte} bit {bit})"),
        );
    }
    // The checksums make single-bit acceptance astronomically unlikely;
    // if flips start passing, the framing has regressed.
    assert_eq!(accepted, 0, "single-bit flips slipped past the checksums");
}

#[test]
fn typed_rejections_name_the_damage() {
    let b = baseline();
    let mut magic = b.bytes.clone();
    magic[2] = b'X';
    assert_eq!(
        HardwareImage::from_bytes(&magic).unwrap_err(),
        ImageError::BadMagic
    );

    let mut version = b.bytes.clone();
    version[4] = 0x39;
    version[5] = 0x05;
    assert_eq!(
        HardwareImage::from_bytes(&version).unwrap_err(),
        ImageError::UnsupportedVersion { version: 0x0539 }
    );

    // Magic(4) + version(2) + header frame(12) = header body at 18.
    let mut checksum = b.bytes.clone();
    checksum[18] ^= 0x01;
    assert_eq!(
        HardwareImage::from_bytes(&checksum).unwrap_err(),
        ImageError::ChecksumMismatch { section: "header" }
    );

    let mut trailing = b.bytes.clone();
    trailing.extend_from_slice(&[0, 0, 0]);
    assert_eq!(
        HardwareImage::from_bytes(&trailing).unwrap_err(),
        ImageError::Malformed { what: "image" }
    );

    assert_eq!(
        HardwareImage::from_bytes(&[]).unwrap_err(),
        ImageError::Truncated { what: "magic" }
    );
}

/// A cell section that lies about its blocked Index Table geometry —
/// with the frame checksum recomputed so the lie is *internally
/// consistent* — must still be rejected with the typed geometry error.
/// This is the case integrity checking alone cannot catch: the loader
/// has to cross-check the declared block size against the entry width.
#[test]
fn consistent_blocked_geometry_lie_is_rejected() {
    let b = baseline();
    let hlen = u64::from_le_bytes(b.bytes[6..14].try_into().unwrap()) as usize;
    let cell = 18 + hlen;
    let clen = u64::from_le_bytes(b.bytes[cell..cell + 8].try_into().unwrap()) as usize;
    let mut body = b.bytes[cell + 12..cell + 12 + clen].to_vec();
    // Cell body: base 1 + stride 1 + selector 20 + part count 4 + part
    // family 20 + entry width 4 puts the layout tag at 50.
    assert_eq!(body[50], 1, "default engine images use the blocked layout");
    let declared = u32::from_le_bytes(body[51..55].try_into().unwrap());
    body[51..55].copy_from_slice(&(declared + 1).to_le_bytes());
    let mut forged = b.bytes[..cell].to_vec();
    forged.extend((body.len() as u64).to_le_bytes());
    let mut sum = 0x811C_9DC5u32; // FNV-1a, same as the wire format
    for &byte in &body {
        sum ^= u32::from(byte);
        sum = sum.wrapping_mul(0x0100_0193);
    }
    forged.extend(sum.to_le_bytes());
    forged.extend_from_slice(&body);
    forged.extend_from_slice(&b.bytes[cell + 12 + clen..]);
    assert_eq!(
        HardwareImage::from_bytes(&forged).unwrap_err(),
        ImageError::BlockGeometryMismatch {
            declared: declared + 1,
            expected: declared,
        }
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary garbage never panics the loader.
    #[test]
    fn random_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..768)) {
        let _ = HardwareImage::from_bytes(&bytes);
    }

    /// Garbage wearing the right magic and version still cannot panic
    /// or smuggle in a wrong-but-verifying engine.
    #[test]
    fn framed_garbage_never_panics(body in proptest::collection::vec(any::<u8>(), 0..768)) {
        let mut bytes = Vec::with_capacity(body.len() + 6);
        bytes.extend(*b"CHSL");
        bytes.extend(2u16.to_le_bytes());
        bytes.extend(&body);
        assert_contract(&bytes, "framed garbage");
    }

    /// Multi-byte splices into the canonical stream (a harsher model
    /// than single-bit flips) keep the load contract.
    #[test]
    fn spliced_corruption_keeps_contract(
        offset in any::<u32>(),
        splice in proptest::collection::vec(any::<u8>(), 1..24),
    ) {
        let b = baseline();
        let at = offset as usize % b.bytes.len();
        let mut mutated = b.bytes.clone();
        for (i, &v) in splice.iter().enumerate() {
            if at + i < mutated.len() {
                mutated[at + i] = v;
            }
        }
        assert_contract(&mutated, "splice");
    }
}
